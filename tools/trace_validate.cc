/**
 * @file
 * trace-validate — structural checker for the telemetry outputs.
 *
 *   trace-validate --trace=run.json [--metrics=run.metrics.json]
 *                  [--audit=run.audit.json]
 *                  [--timeseries=run.timeseries.json]
 *                  [--critpath=run.critpath.json]
 *                  [--require-spans] [--require-decisions]
 *
 * Validates that a --trace-out file is well-formed Chrome trace-event
 * JSON: a "traceEvents" array whose events carry the fields their
 * phase requires, span durations are non-negative, timestamps are
 * monotone (the exporter sorts), and every flow step/finish resolves
 * to a previously started flow that is closed exactly once. A
 * --metrics-out file is checked for the registry's JSON shape. An
 * --audit-out file is checked for the decision-audit schema: a
 * "records" array with contiguous sequence numbers, monotone
 * timestamps and per-kind required fields (including obs.alert anomaly
 * records), plus a "summary" object whose decision counts match the
 * records. A --timeseries-out file is checked for the delta-encoded
 * series schema, monotone counters, the alerts array, and the optional
 * embedded SLO report. A --critpath-out file is checked for the
 * "powerchief-critpath-v1" schema: per-stage share statistics within
 * [0,1], non-negative segment totals, well-formed path signatures, a
 * controller block whose counts are internally consistent, and a
 * per-interval log with monotone timestamps.
 *
 * Sharded runs (scenarios with node groups; docs/PERFORMANCE.md) are
 * handled transparently: a merged Chrome trace is validated per pid
 * (one track group per node, pid-local flow ids), and the other four
 * artifacts may arrive as "powerchief-sharded-v1" envelopes whose
 * per-node documents are each validated against the single-node
 * schema, with counts summed into the printed summary.
 *
 * Exits 0 and prints a one-line summary on success; exits 1 with a
 * diagnostic on the first structural violation. Wired into tools/
 * check.sh and ctest so a malformed exporter fails the build gates.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/json.h"

using namespace pc;

namespace {

struct TraceSummary
{
    std::size_t events = 0;
    std::size_t spans = 0;
    std::size_t serveSpans = 0;
    std::size_t waitSpans = 0;
    std::size_t controlSpans = 0;
    std::size_t instants = 0;
    std::size_t decisions = 0;
    std::size_t flows = 0;
};

[[noreturn]] void
bad(const std::string &what)
{
    std::cerr << "trace-validate: " << what << "\n";
    std::exit(1);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        bad("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

JsonValue
parseFile(const std::string &path)
{
    const JsonParseResult parsed = parseJson(slurp(path));
    if (!parsed.ok())
        bad("'" + path + "' is not valid JSON: " + parsed.error +
            " at byte " + std::to_string(parsed.errorPos));
    return *parsed.value;
}

/**
 * Detect a "powerchief-sharded-v1" envelope (the merged artifact a
 * nodeGroups > 1 run writes; see docs/PERFORMANCE.md). Returns the
 * per-node document array when @p root is an envelope of the expected
 * artifact kind, null when it is a plain single-node document, and
 * fails hard on a mismatched artifact tag or malformed envelope.
 */
const JsonArray *
shardedDocs(const JsonValue &root, const std::string &path,
            const char *artifact)
{
    if (!root.isObject() ||
        root.stringOr("schema", "") != "powerchief-sharded-v1")
        return nullptr;
    if (root.stringOr("artifact", "") != artifact)
        bad("'" + path + "' sharded envelope holds artifact \"" +
            root.stringOr("artifact", "") + "\", expected \"" +
            std::string(artifact) + "\"");
    const JsonValue *shards = root.find("shards");
    if (!shards || !shards->isArray())
        bad("'" + path + "' sharded envelope lacks a \"shards\" array");
    if (shards->asArray().empty())
        bad("'" + path + "' sharded envelope holds no shard documents");
    if (root.numberOr("nodes", -1.0) !=
        static_cast<double>(shards->asArray().size()))
        bad("'" + path + "' envelope \"nodes\" disagrees with the "
            "shards array length");
    return &shards->asArray();
}

const JsonValue &
requireField(const JsonValue &event, const char *key, std::size_t index)
{
    const JsonValue *field = event.find(key);
    if (!field)
        bad("event " + std::to_string(index) + " lacks \"" + key + "\"");
    return *field;
}

double
requireNumber(const JsonValue &event, const char *key, std::size_t index)
{
    const JsonValue &field = requireField(event, key, index);
    if (!field.isNumber())
        bad("event " + std::to_string(index) + " field \"" + key +
            "\" is not a number");
    return field.asNumber();
}

TraceSummary
validateTrace(const std::string &path)
{
    const JsonValue root = parseFile(path);
    if (!root.isObject())
        bad("'" + path + "' root is not an object");
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray())
        bad("'" + path + "' lacks a \"traceEvents\" array");

    TraceSummary summary;
    // Merged sharded traces hold one track group per node under its
    // own pid: timestamps restart per pid and flow ids are pid-local,
    // so both checks key on the event's pid. A single-node trace has
    // one pid and degenerates to the global checks.
    std::set<std::pair<double, double>> openFlows;
    std::set<std::pair<double, double>> closedFlows;
    std::map<double, double> lastTsByPid;

    const JsonArray &list = events->asArray();
    for (std::size_t i = 0; i < list.size(); ++i) {
        const JsonValue &ev = list[i];
        if (!ev.isObject())
            bad("event " + std::to_string(i) + " is not an object");
        const JsonValue &ph = requireField(ev, "ph", i);
        if (!ph.isString() || ph.asString().size() != 1)
            bad("event " + std::to_string(i) +
                " has a malformed \"ph\"");
        const JsonValue &name = requireField(ev, "name", i);
        if (!name.isString())
            bad("event " + std::to_string(i) + " \"name\" not a string");

        const char phase = ph.asString()[0];
        if (phase == 'M')
            continue; // Metadata records carry no timestamp.

        ++summary.events;
        const double pid = requireNumber(ev, "pid", i);
        const double ts = requireNumber(ev, "ts", i);
        const auto [it, first] = lastTsByPid.try_emplace(pid, ts);
        if (!first && ts < it->second)
            bad("event " + std::to_string(i) +
                " breaks timestamp monotonicity within pid " +
                std::to_string(pid));
        it->second = ts;

        switch (phase) {
          case 'X': {
            const double dur = requireNumber(ev, "dur", i);
            if (dur < 0.0)
                bad("span event " + std::to_string(i) +
                    " has negative duration");
            ++summary.spans;
            const std::string cat = ev.stringOr("cat", "");
            if (cat == "serve")
                ++summary.serveSpans;
            else if (cat == "queue")
                ++summary.waitSpans;
            else if (cat == "control")
                ++summary.controlSpans;
            break;
          }
          case 'i':
            ++summary.instants;
            if (ev.stringOr("cat", "") == "decision")
                ++summary.decisions;
            break;
          case 's': {
            const double id = requireNumber(ev, "id", i);
            if (openFlows.count({pid, id}) ||
                closedFlows.count({pid, id}))
                bad("flow " + std::to_string(id) +
                    " started more than once");
            openFlows.insert({pid, id});
            ++summary.flows;
            break;
          }
          case 't':
          case 'f': {
            const double id = requireNumber(ev, "id", i);
            if (!openFlows.count({pid, id}))
                bad("flow event " + std::to_string(i) +
                    " references unopened flow " + std::to_string(id));
            if (phase == 'f') {
                openFlows.erase({pid, id});
                closedFlows.insert({pid, id});
            }
            break;
          }
          default:
            bad("event " + std::to_string(i) + " has unknown phase '" +
                std::string(1, phase) + "'");
        }
    }

    if (!openFlows.empty())
        bad(std::to_string(openFlows.size()) +
            " flow(s) started but never finished");
    return summary;
}

struct AuditSummary
{
    std::size_t records = 0;
    std::size_t selects = 0;
    std::size_t recycles = 0;
    std::size_t withdraws = 0;
    std::size_t rpcRetries = 0;
    std::size_t staleSkips = 0;
    std::size_t fastcapPlans = 0;
    std::size_t cuttlesysPlans = 0;
    std::size_t obsAlerts = 0;
    std::size_t misboosts = 0;
    std::size_t clusterRebalances = 0;
    std::size_t scored = 0;
};

AuditSummary
validateAuditDoc(const JsonValue &root, const std::string &path)
{
    if (!root.isObject())
        bad("'" + path + "' root is not an object");
    const JsonValue *records = root.find("records");
    if (!records || !records->isArray())
        bad("'" + path + "' lacks a \"records\" array");
    const JsonValue *summary = root.find("summary");
    if (!summary || !summary->isObject())
        bad("'" + path + "' lacks a \"summary\" object");

    AuditSummary counts;
    double lastT = 0.0;
    const JsonArray &list = records->asArray();
    for (std::size_t i = 0; i < list.size(); ++i) {
        const JsonValue &rec = list[i];
        if (!rec.isObject())
            bad("audit record " + std::to_string(i) +
                " is not an object");
        if (requireNumber(rec, "seq", i) != static_cast<double>(i))
            bad("audit record " + std::to_string(i) +
                " has a non-contiguous \"seq\"");
        const double t = requireNumber(rec, "t_s", i);
        if (i > 0 && t < lastT)
            bad("audit record " + std::to_string(i) +
                " breaks timestamp monotonicity");
        lastT = t;
        requireNumber(rec, "interval", i);

        const JsonValue &kind = requireField(rec, "kind", i);
        if (!kind.isString())
            bad("audit record " + std::to_string(i) +
                " \"kind\" not a string");
        ++counts.records;
        if (kind.asString() == "select") {
            ++counts.selects;
            const JsonValue &cands = requireField(rec, "candidates", i);
            if (!cands.isArray())
                bad("audit record " + std::to_string(i) +
                    " \"candidates\" not an array");
            const JsonValue &chosen = requireField(rec, "chosen", i);
            if (!chosen.isString())
                bad("audit record " + std::to_string(i) +
                    " \"chosen\" not a string");
            // The Eq. 2/3 model inputs every select must explain.
            requireNumber(rec, "t_inst_s", i);
            requireNumber(rec, "t_freq_s", i);
            requireNumber(rec, "alpha_lh", i);
            requireNumber(rec, "headroom_before_w", i);
            requireNumber(rec, "headroom_after_w", i);
            if (rec.find("score") != nullptr) {
                const JsonValue &score = *rec.find("score");
                if (!score.isObject())
                    bad("audit record " + std::to_string(i) +
                        " \"score\" not an object");
                requireNumber(score, "predicted_s", i);
                requireNumber(score, "realized_s", i);
                requireNumber(score, "abs_pct_err", i);
                ++counts.scored;
            }
        } else if (kind.asString() == "recycle") {
            ++counts.recycles;
            requireNumber(rec, "needed_w", i);
            requireNumber(rec, "recycled_w", i);
            requireNumber(rec, "recycle_steps", i);
        } else if (kind.asString() == "withdraw") {
            ++counts.withdraws;
            requireNumber(rec, "target", i);
            requireNumber(rec, "utilization", i);
            requireNumber(rec, "utilization_threshold", i);
        } else if (kind.asString() == "rpc_retry") {
            ++counts.rpcRetries;
            requireNumber(rec, "call_id", i);
            requireNumber(rec, "backoff_s", i);
            // A retry record exists only for retransmissions, which
            // start at attempt 2.
            if (requireNumber(rec, "attempt", i) < 2.0)
                bad("audit record " + std::to_string(i) +
                    " rpc_retry \"attempt\" below 2");
        } else if (kind.asString() == "stale_skip") {
            ++counts.staleSkips;
            requireNumber(rec, "target", i);
            requireNumber(rec, "stage", i);
            // A skip can only happen when the report age exceeded the
            // (positive) stale window.
            const double age = requireNumber(rec, "age_s", i);
            const double window =
                requireNumber(rec, "stale_window_s", i);
            if (window <= 0.0 || age <= window)
                bad("audit record " + std::to_string(i) +
                    " stale_skip age/window inconsistent");
        } else if (kind.asString() == "fastcap_plan" ||
                   kind.asString() == "cuttlesys_plan") {
            if (kind.asString() == "fastcap_plan")
                ++counts.fastcapPlans;
            else
                ++counts.cuttlesysPlans;
            requireNumber(rec, "steps_up", i);
            requireNumber(rec, "steps_down", i);
            requireNumber(rec, "launches", i);
            requireNumber(rec, "withdraws", i);
            requireNumber(rec, "objective_s", i);
            requireNumber(rec, "headroom_before_w", i);
            requireNumber(rec, "headroom_after_w", i);
            // The planned allocation may never exceed what the ledger
            // could hold at plan time.
            if (requireNumber(rec, "planned_w", i) < 0.0)
                bad("audit record " + std::to_string(i) +
                    " plan \"planned_w\" negative");
            const JsonValue &explore = requireField(rec, "explore", i);
            if (!explore.isBool())
                bad("audit record " + std::to_string(i) +
                    " plan \"explore\" not a bool");
        } else if (kind.asString() == "misboost") {
            ++counts.misboosts;
            requireNumber(rec, "boosted_stage", i);
            requireNumber(rec, "dominant_stage", i);
            // Shares are fractions of the interval's critical-path
            // seconds; a misboost means the boosted stage was not the
            // dominant one, so the two stages must differ.
            const double dominantShare =
                requireNumber(rec, "dominant_share", i);
            const double boostedShare =
                requireNumber(rec, "boosted_share", i);
            if (dominantShare < 0.0 || dominantShare > 1.0 ||
                boostedShare < 0.0 || boostedShare > 1.0)
                bad("audit record " + std::to_string(i) +
                    " misboost share outside [0,1]");
            if (requireNumber(rec, "boosted_stage", i) ==
                requireNumber(rec, "dominant_stage", i))
                bad("audit record " + std::to_string(i) +
                    " misboost boosted == dominant stage");
        } else if (kind.asString() == "cluster_rebalance") {
            ++counts.clusterRebalances;
            if (requireNumber(rec, "node", i) < 0.0)
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance \"node\" negative");
            if (requireNumber(rec, "round", i) < 1.0)
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance \"round\" not 1-based");
            // Assumed shares are watts upper bounds: non-negative on
            // both sides of the decision, as is the report age.
            if (requireNumber(rec, "cap_before_w", i) < 0.0 ||
                requireNumber(rec, "cap_after_w", i) < 0.0)
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance cap watts negative");
            requireNumber(rec, "demand", i);
            if (requireNumber(rec, "report_age_s", i) < 0.0)
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance \"report_age_s\" negative");
            const JsonValue &frozen = requireField(rec, "frozen", i);
            const JsonValue &granted =
                requireField(rec, "granted", i);
            if (!frozen.isBool() || !granted.isBool())
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance frozen/granted not bools");
            // A frozen node is pinned: its share may never rise.
            if (frozen.asBool() &&
                rec.numberOr("cap_after_w", 0.0) >
                    rec.numberOr("cap_before_w", 0.0) + 1e-9)
                bad("audit record " + std::to_string(i) +
                    " cluster_rebalance raised a frozen node");
        } else if (kind.asString() == "obs.alert") {
            ++counts.obsAlerts;
            const JsonValue &series = requireField(rec, "series", i);
            if (!series.isString())
                bad("audit record " + std::to_string(i) +
                    " obs.alert \"series\" not a string");
            requireNumber(rec, "value", i);
            requireNumber(rec, "mean", i);
            const double sigma = requireNumber(rec, "sigma", i);
            if (sigma <= 0.0)
                bad("audit record " + std::to_string(i) +
                    " obs.alert \"sigma\" not positive");
            const double z = requireNumber(rec, "z", i);
            const double threshold =
                requireNumber(rec, "threshold", i);
            // A detector fires only at or beyond its threshold.
            if (threshold <= 0.0 || std::abs(z) < threshold)
                bad("audit record " + std::to_string(i) +
                    " obs.alert z/threshold inconsistent");
            const double direction =
                requireNumber(rec, "direction", i);
            if (direction != 1.0 && direction != -1.0)
                bad("audit record " + std::to_string(i) +
                    " obs.alert \"direction\" not +/-1");
            if ((direction > 0.0) != (z >= 0.0))
                bad("audit record " + std::to_string(i) +
                    " obs.alert direction disagrees with z sign");
        } else {
            bad("audit record " + std::to_string(i) +
                " has unknown kind '" + kind.asString() + "'");
        }
    }

    const JsonValue *decisions = summary->find("decisions");
    if (!decisions || !decisions->isObject())
        bad("'" + path + "' summary lacks a \"decisions\" object");
    const auto check = [&](const char *key, std::size_t want) {
        if (decisions->numberOr(key, -1.0) !=
            static_cast<double>(want))
            bad("'" + path + "' summary \"" + std::string(key) +
                "\" count disagrees with the records array");
    };
    check("select", counts.selects);
    check("recycle", counts.recycles);
    check("withdraw", counts.withdraws);
    check("rpc_retry", counts.rpcRetries);
    check("stale_skip", counts.staleSkips);
    check("fastcap_plan", counts.fastcapPlans);
    check("cuttlesys_plan", counts.cuttlesysPlans);
    check("obs_alert", counts.obsAlerts);
    check("misboost", counts.misboosts);
    check("cluster_rebalance", counts.clusterRebalances);
    const JsonValue *prediction = summary->find("prediction");
    if (!prediction || !prediction->isObject())
        bad("'" + path + "' summary lacks a \"prediction\" object");
    return counts;
}

AuditSummary
validateAudit(const std::string &path)
{
    const JsonValue root = parseFile(path);
    if (const JsonArray *docs = shardedDocs(root, path, "audit")) {
        AuditSummary total;
        for (std::size_t g = 0; g < docs->size(); ++g) {
            const AuditSummary one = validateAuditDoc(
                (*docs)[g], path + "#node" + std::to_string(g));
            total.records += one.records;
            total.selects += one.selects;
            total.recycles += one.recycles;
            total.withdraws += one.withdraws;
            total.rpcRetries += one.rpcRetries;
            total.staleSkips += one.staleSkips;
            total.fastcapPlans += one.fastcapPlans;
            total.cuttlesysPlans += one.cuttlesysPlans;
            total.obsAlerts += one.obsAlerts;
            total.misboosts += one.misboosts;
            total.scored += one.scored;
        }
        return total;
    }
    return validateAuditDoc(root, path);
}

void
validateMetricsDoc(const JsonValue &root, const std::string &path)
{
    if (!root.isObject())
        bad("'" + path + "' root is not an object");
    for (const char *section : {"counters", "gauges", "histograms"}) {
        const JsonValue *value = root.find(section);
        if (!value || !value->isObject())
            bad("'" + path + "' lacks a \"" + std::string(section) +
                "\" object");
    }
    // Histogram bucket self-checks: cumulative "le" counts must be
    // non-decreasing in bound order, the +inf bucket must equal the
    // count, and the sum must be present.
    for (const auto &[name, hist] : root.find("histograms")->asObject()) {
        if (!hist.isObject())
            bad("'" + path + "' histogram \"" + name +
                "\" is not an object");
        const double count = hist.numberOr("count", -1.0);
        if (count < 0.0)
            bad("'" + path + "' histogram \"" + name +
                "\" lacks a non-negative \"count\"");
        if (!hist.find("sum") || !hist.find("sum")->isNumber())
            bad("'" + path + "' histogram \"" + name +
                "\" lacks a numeric \"sum\"");
        const JsonValue *buckets = hist.find("buckets");
        if (!buckets || !buckets->isObject())
            bad("'" + path + "' histogram \"" + name +
                "\" lacks a \"buckets\" object");
        // Order by numeric bound, +inf last ("le" labels sort
        // lexicographically in the dump, not numerically).
        std::vector<std::pair<double, double>> byBound;
        for (const auto &[label, value] : buckets->asObject()) {
            if (!value.isNumber() || value.asNumber() < 0.0)
                bad("'" + path + "' histogram \"" + name +
                    "\" bucket \"" + label +
                    "\" is not a non-negative number");
            const double bound = label == "+inf"
                ? std::numeric_limits<double>::infinity()
                : std::strtod(label.c_str(), nullptr);
            byBound.emplace_back(bound, value.asNumber());
        }
        std::sort(byBound.begin(), byBound.end());
        double prev = 0.0;
        for (const auto &[bound, cum] : byBound) {
            if (cum < prev)
                bad("'" + path + "' histogram \"" + name +
                    "\" cumulative buckets decrease");
            prev = cum;
        }
        if (byBound.empty() ||
            !std::isinf(byBound.back().first) ||
            byBound.back().second != count)
            bad("'" + path + "' histogram \"" + name +
                "\" +inf bucket disagrees with count");
    }
    // Fault-injection counters are optional (chaos runs only), but any
    // that appear must be finite and non-negative — counters never run
    // backwards.
    const JsonValue *counters = root.find("counters");
    for (const auto &[name, value] : counters->asObject()) {
        if (name.rfind("faults.", 0) != 0 &&
            name.rfind("rpc.client.", 0) != 0 &&
            name.rfind("control.", 0) != 0)
            continue;
        if (!value.isNumber() || value.asNumber() < 0.0)
            bad("'" + path + "' counter \"" + name +
                "\" is not a non-negative number");
    }
}

void
validateMetrics(const std::string &path)
{
    const JsonValue root = parseFile(path);
    if (const JsonArray *docs = shardedDocs(root, path, "metrics")) {
        for (std::size_t g = 0; g < docs->size(); ++g)
            validateMetricsDoc((*docs)[g],
                               path + "#node" + std::to_string(g));
        return;
    }
    validateMetricsDoc(root, path);
}

struct TimeseriesSummary
{
    std::size_t series = 0;
    std::size_t points = 0;
    std::size_t alerts = 0;
};

/** Check an embedded SLO report (timeseries doc or sharded envelope). */
void
validateSloBlock(const JsonValue &slo, const std::string &path)
{
    if (!slo.isObject())
        bad("'" + path + "' \"slo\" is not an object");
    for (const char *key :
         {"fast_burn", "max_fast_burn", "max_slow_burn", "objective",
          "slow_burn", "target_s", "total", "violation_s",
          "violations"}) {
        if (slo.numberOr(key, -1.0) < 0.0)
            bad("'" + path + "' slo field \"" + std::string(key) +
                "\" missing or negative");
    }
    if (slo.numberOr("violations", 0.0) > slo.numberOr("total", 0.0))
        bad("'" + path + "' slo violations exceed total");
}

/**
 * Check the arbiter summary a cluster run attaches to its timeseries
 * envelope (see the cluster section of docs/OBSERVABILITY.md). Only
 * called when the "cluster" key is present — non-cluster envelopes
 * skip it gracefully.
 */
void
validateClusterBlock(const JsonValue &cluster, const std::string &path)
{
    if (!cluster.isObject())
        bad("'" + path + "' \"cluster\" is not an object");
    const double cap = cluster.numberOr("cap_watts", -1.0);
    if (cap <= 0.0)
        bad("'" + path + "' cluster \"cap_watts\" missing or not "
            "positive");
    if (cluster.stringOr("policy", "").empty())
        bad("'" + path + "' cluster lacks a \"policy\" string");
    for (const char *key : {"freeze_events", "grants", "rebalances",
                            "reports", "reports_dropped"}) {
        if (cluster.numberOr(key, -1.0) < 0.0)
            bad("'" + path + "' cluster field \"" + std::string(key) +
                "\" missing or negative");
    }
    if (cluster.numberOr("reports_dropped", 0.0) >
        cluster.numberOr("reports", 0.0))
        bad("'" + path + "' cluster dropped more reports than it saw");
    const JsonValue *nodes = cluster.find("nodes");
    if (!nodes || !nodes->isArray() || nodes->asArray().empty())
        bad("'" + path + "' cluster lacks a non-empty \"nodes\" "
            "array");
    double assumedTotal = 0.0;
    const JsonArray &nodeList = nodes->asArray();
    for (std::size_t i = 0; i < nodeList.size(); ++i) {
        const JsonValue &node = nodeList[i];
        if (!node.isObject())
            bad("cluster node " + std::to_string(i) +
                " is not an object");
        if (node.numberOr("node", -1.0) !=
            static_cast<double>(i))
            bad("cluster node " + std::to_string(i) +
                " \"node\" disagrees with its position");
        const double assumed = node.numberOr("assumed_w", -1.0);
        if (assumed < 0.0)
            bad("cluster node " + std::to_string(i) +
                " \"assumed_w\" missing or negative");
        assumedTotal += assumed;
        if (node.numberOr("last_grant_w", -1.0) < 0.0)
            bad("cluster node " + std::to_string(i) +
                " \"last_grant_w\" missing or negative");
        if (node.numberOr("reports", -1.0) < 0.0)
            bad("cluster node " + std::to_string(i) +
                " \"reports\" missing or negative");
        const JsonValue *frozen = node.find("frozen");
        if (!frozen || !frozen->isBool())
            bad("cluster node " + std::to_string(i) +
                " lacks a boolean \"frozen\"");
    }
    // The protocol's core invariant, checked on the artifact too:
    // assumed upper bounds never exceed the fleet cap.
    if (assumedTotal > cap + 1e-6)
        bad("'" + path + "' cluster assumed watts " +
            std::to_string(assumedTotal) + " exceed the cap " +
            std::to_string(cap));
}

/**
 * Validate a --timeseries-out JSON dump: delta-encoded series whose
 * array lengths agree with "n", non-negative time deltas, monotone
 * counters, a well-formed "alerts" array, and (when present) a
 * self-consistent "slo" object.
 */
TimeseriesSummary
validateTimeseriesDoc(const JsonValue &root, const std::string &path)
{
    if (!root.isObject())
        bad("'" + path + "' root is not an object");
    const double samples = root.numberOr("samples", -1.0);
    if (samples < 0.0)
        bad("'" + path + "' lacks a non-negative \"samples\"");
    const JsonValue *series = root.find("series");
    if (!series || !series->isObject())
        bad("'" + path + "' lacks a \"series\" object");

    TimeseriesSummary summary;
    for (const auto &[name, entry] : series->asObject()) {
        ++summary.series;
        if (!entry.isObject())
            bad("series \"" + name + "\" is not an object");
        const std::string kind = entry.stringOr("kind", "");
        if (kind != "counter" && kind != "gauge")
            bad("series \"" + name + "\" has unknown kind '" + kind +
                "'");
        if (!entry.find("unit") || !entry.find("unit")->isString())
            bad("series \"" + name + "\" lacks a \"unit\" string");
        const double n = entry.numberOr("n", -1.0);
        const double dropped = entry.numberOr("dropped", -1.0);
        if (n < 0.0 || dropped < 0.0)
            bad("series \"" + name +
                "\" lacks non-negative \"n\"/\"dropped\"");
        if (n + dropped > samples)
            bad("series \"" + name +
                "\" holds more points than the recorder sampled");
        entry.numberOr("t0_us", 0.0);
        const JsonValue *deltas = entry.find("dt_us");
        const JsonValue *values = entry.find("v");
        if (!deltas || !deltas->isArray() || !values ||
            !values->isArray())
            bad("series \"" + name +
                "\" lacks \"dt_us\"/\"v\" arrays");
        const std::size_t count = static_cast<std::size_t>(n);
        if (values->asArray().size() != count)
            bad("series \"" + name + "\" \"v\" length disagrees "
                "with \"n\"");
        if (deltas->asArray().size() != (count ? count - 1 : 0))
            bad("series \"" + name + "\" \"dt_us\" length is not "
                "n-1");
        for (const JsonValue &dt : deltas->asArray()) {
            if (!dt.isNumber() || dt.asNumber() < 0.0)
                bad("series \"" + name +
                    "\" has a negative or non-numeric time delta");
        }
        double prev = -std::numeric_limits<double>::infinity();
        for (const JsonValue &v : values->asArray()) {
            if (!v.isNumber())
                bad("series \"" + name +
                    "\" has a non-numeric value");
            if (kind == "counter" && v.asNumber() < prev)
                bad("series \"" + name +
                    "\" is a counter but decreases");
            prev = v.asNumber();
        }
        summary.points += count;
    }

    const JsonValue *alerts = root.find("alerts");
    if (!alerts || !alerts->isArray())
        bad("'" + path + "' lacks an \"alerts\" array");
    double lastT = -std::numeric_limits<double>::infinity();
    const JsonArray &alertList = alerts->asArray();
    for (std::size_t i = 0; i < alertList.size(); ++i) {
        const JsonValue &alert = alertList[i];
        if (!alert.isObject())
            bad("alert " + std::to_string(i) + " is not an object");
        if (!alert.find("series") ||
            !alert.find("series")->isString())
            bad("alert " + std::to_string(i) +
                " lacks a \"series\" string");
        const double t = requireNumber(alert, "t_s", i);
        if (t < lastT)
            bad("alert " + std::to_string(i) +
                " breaks timestamp monotonicity");
        lastT = t;
        requireNumber(alert, "value", i);
        requireNumber(alert, "mean", i);
        if (requireNumber(alert, "sigma", i) <= 0.0)
            bad("alert " + std::to_string(i) +
                " \"sigma\" not positive");
        const double z = requireNumber(alert, "z", i);
        const double direction = requireNumber(alert, "direction", i);
        if (direction != 1.0 && direction != -1.0)
            bad("alert " + std::to_string(i) +
                " \"direction\" not +/-1");
        if ((direction > 0.0) != (z >= 0.0))
            bad("alert " + std::to_string(i) +
                " direction disagrees with z sign");
        ++summary.alerts;
    }

    if (const JsonValue *slo = root.find("slo"))
        validateSloBlock(*slo, path);
    return summary;
}

TimeseriesSummary
validateTimeseries(const std::string &path)
{
    const JsonValue root = parseFile(path);
    if (const JsonArray *docs =
            shardedDocs(root, path, "timeseries")) {
        TimeseriesSummary total;
        for (std::size_t g = 0; g < docs->size(); ++g) {
            const TimeseriesSummary one = validateTimeseriesDoc(
                (*docs)[g], path + "#node" + std::to_string(g));
            total.series += one.series;
            total.points += one.points;
            total.alerts += one.alerts;
        }
        // The run-global SLO report lives on the envelope (per-node
        // documents never carry one: burn rates over a node's private
        // completions would not be the fleet SLO).
        if (const JsonValue *slo = root.find("slo"))
            validateSloBlock(*slo, path);
        // Cluster runs attach the arbiter summary to the envelope;
        // single-node and non-cluster fleets simply have no block.
        if (const JsonValue *cluster = root.find("cluster"))
            validateClusterBlock(*cluster, path);
        return total;
    }
    return validateTimeseriesDoc(root, path);
}

struct CritPathSummary
{
    std::size_t stages = 0;
    std::size_t signatures = 0;
    std::size_t intervals = 0;
    std::size_t misboosts = 0;
};

/**
 * Validate a --critpath-out JSON dump (schema powerchief-critpath-v1):
 * per-stage share statistics inside [0,1] with ordered quantiles,
 * non-negative segment totals, signature entries with positive counts,
 * a self-consistent controller block, and a per-interval log with
 * monotone timestamps whose agree/misboost totals match the controller
 * counters.
 */
CritPathSummary
validateCritPathDoc(const JsonValue &root, const std::string &path)
{
    if (!root.isObject())
        bad("'" + path + "' root is not an object");
    if (root.stringOr("schema", "") != "powerchief-critpath-v1")
        bad("'" + path + "' lacks schema \"powerchief-critpath-v1\"");
    const double queries = root.numberOr("queries", -1.0);
    if (queries < 0.0)
        bad("'" + path + "' lacks a non-negative \"queries\"");

    CritPathSummary summary;
    const JsonValue *stages = root.find("stages");
    if (!stages || !stages->isArray())
        bad("'" + path + "' lacks a \"stages\" array");
    double pathsTotal = 0.0;
    const JsonArray &stageList = stages->asArray();
    for (std::size_t i = 0; i < stageList.size(); ++i) {
        const JsonValue &st = stageList[i];
        if (!st.isObject())
            bad("critpath stage " + std::to_string(i) +
                " is not an object");
        requireNumber(st, "stage", i);
        for (const char *key : {"boosted_hops", "dominant",
                                "mean_served_mhz", "paths", "queue_s",
                                "redispatch_s", "retry_s", "serve_s",
                                "wasted_s"}) {
            if (requireNumber(st, key, i) < 0.0)
                bad("critpath stage " + std::to_string(i) + " \"" +
                    key + "\" negative");
        }
        pathsTotal = std::max(pathsTotal, st.numberOr("paths", 0.0));
        const double p50 = requireNumber(st, "share_p50", i);
        const double p95 = requireNumber(st, "share_p95", i);
        const double p99 = requireNumber(st, "share_p99", i);
        const double mean = requireNumber(st, "share_mean", i);
        if (p50 < 0.0 || p99 > 1.0 || mean < 0.0 || mean > 1.0)
            bad("critpath stage " + std::to_string(i) +
                " share outside [0,1]");
        if (p50 > p95 || p95 > p99)
            bad("critpath stage " + std::to_string(i) +
                " share quantiles not ordered");
        ++summary.stages;
    }
    // A stage can appear on at most every profiled query's path.
    if (pathsTotal > queries)
        bad("'" + path + "' a stage holds more paths than queries");

    const JsonValue *sigs = root.find("signatures");
    if (!sigs || !sigs->isArray())
        bad("'" + path + "' lacks a \"signatures\" array");
    double lastCount = std::numeric_limits<double>::infinity();
    const JsonArray &sigList = sigs->asArray();
    for (std::size_t i = 0; i < sigList.size(); ++i) {
        const JsonValue &sig = sigList[i];
        if (!sig.isObject())
            bad("critpath signature " + std::to_string(i) +
                " is not an object");
        const JsonValue &name = requireField(sig, "signature", i);
        if (!name.isString() || name.asString().empty() ||
            name.asString()[0] != 's')
            bad("critpath signature " + std::to_string(i) +
                " is malformed");
        const double count = requireNumber(sig, "count", i);
        if (count <= 0.0)
            bad("critpath signature " + std::to_string(i) +
                " count not positive");
        // The export is top-K most-frequent-first.
        if (count > lastCount)
            bad("critpath signatures not sorted by count");
        lastCount = count;
        ++summary.signatures;
    }

    const JsonValue *controller = root.find("controller");
    if (!controller || !controller->isObject())
        bad("'" + path + "' lacks a \"controller\" object");
    for (const char *key : {"agree", "agreement_rate",
                            "boost_intervals", "intervals",
                            "mean_shortening_pct", "misboosts",
                            "scored"}) {
        if (!controller->find(key) ||
            !controller->find(key)->isNumber())
            bad("'" + path + "' controller lacks numeric \"" +
                std::string(key) + "\"");
    }
    const double agree = controller->numberOr("agree", 0.0);
    const double scored = controller->numberOr("scored", 0.0);
    const double intervalsN = controller->numberOr("intervals", 0.0);
    if (agree > scored || scored > intervalsN)
        bad("'" + path + "' controller agree/scored/intervals "
            "inconsistent");
    const double rate = controller->numberOr("agreement_rate", -1.0);
    if (rate < 0.0 || rate > 1.0)
        bad("'" + path + "' controller agreement_rate outside [0,1]");

    const JsonValue *intervals = root.find("intervals");
    if (!intervals || !intervals->isArray())
        bad("'" + path + "' lacks an \"intervals\" array");
    double lastT = -std::numeric_limits<double>::infinity();
    double agreeSeen = 0.0;
    double misboostSeen = 0.0;
    const JsonArray &ivList = intervals->asArray();
    for (std::size_t i = 0; i < ivList.size(); ++i) {
        const JsonValue &iv = ivList[i];
        if (!iv.isObject())
            bad("critpath interval " + std::to_string(i) +
                " is not an object");
        const double t = requireNumber(iv, "t_s", i);
        if (t < lastT)
            bad("critpath interval " + std::to_string(i) +
                " breaks timestamp monotonicity");
        lastT = t;
        if (requireNumber(iv, "interval", i) !=
            static_cast<double>(i + 1))
            bad("critpath interval " + std::to_string(i) +
                " has a non-contiguous \"interval\"");
        requireNumber(iv, "queries", i);
        requireNumber(iv, "dominant_stage", i);
        requireNumber(iv, "dominant_share", i);
        requireNumber(iv, "mean_crit_s", i);
        const JsonValue &boosted = requireField(iv, "boosted", i);
        if (!boosted.isArray())
            bad("critpath interval " + std::to_string(i) +
                " \"boosted\" not an array");
        const JsonValue &agreeFlag = requireField(iv, "agree", i);
        const JsonValue &misboostFlag =
            requireField(iv, "misboost", i);
        if (!agreeFlag.isBool() || !misboostFlag.isBool())
            bad("critpath interval " + std::to_string(i) +
                " agree/misboost not booleans");
        if (agreeFlag.asBool() && misboostFlag.asBool())
            bad("critpath interval " + std::to_string(i) +
                " both agree and misboost");
        if (agreeFlag.asBool())
            agreeSeen += 1.0;
        if (misboostFlag.asBool()) {
            misboostSeen += 1.0;
            ++summary.misboosts;
        }
        ++summary.intervals;
    }
    if (static_cast<double>(summary.intervals) != intervalsN ||
        agreeSeen != agree ||
        misboostSeen != controller->numberOr("misboosts", 0.0))
        bad("'" + path + "' controller counters disagree with the "
            "intervals array");
    return summary;
}

CritPathSummary
validateCritPath(const std::string &path)
{
    const JsonValue root = parseFile(path);
    if (const JsonArray *docs = shardedDocs(root, path, "critpath")) {
        CritPathSummary total;
        for (std::size_t g = 0; g < docs->size(); ++g) {
            const CritPathSummary one = validateCritPathDoc(
                (*docs)[g], path + "#node" + std::to_string(g));
            total.stages += one.stages;
            total.signatures += one.signatures;
            total.intervals += one.intervals;
            total.misboosts += one.misboosts;
        }
        return total;
    }
    return validateCritPathDoc(root, path);
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("trace-validate");
    flags.addString("trace", "", "Chrome trace-event JSON to validate");
    flags.addString("metrics", "", "metrics registry JSON to validate");
    flags.addString("audit", "", "decision-audit JSON to validate");
    flags.addString("timeseries", "",
                    "timeseries JSON (--timeseries-out) to validate");
    flags.addString("critpath", "",
                    "critical-path JSON (--critpath-out) to validate");
    flags.addBool("require-audit-records", false,
                  "fail unless the audit log holds at least one "
                  "decision record");
    flags.addBool("require-spans", false,
                  "fail unless at least one serve span is present");
    flags.addBool("require-decisions", false,
                  "fail unless at least one control decision instant "
                  "event is present");
    if (!flags.parse(argc, argv)) {
        if (!flags.helpRequested())
            std::cerr << "error: " << flags.error() << "\n\n";
        flags.printUsage(std::cerr);
        return flags.helpRequested() ? 0 : 2;
    }

    const std::string tracePath = flags.getString("trace");
    const std::string metricsPath = flags.getString("metrics");
    const std::string auditPath = flags.getString("audit");
    const std::string timeseriesPath = flags.getString("timeseries");
    const std::string critpathPath = flags.getString("critpath");
    if (tracePath.empty() && metricsPath.empty() &&
        auditPath.empty() && timeseriesPath.empty() &&
        critpathPath.empty())
        bad("nothing to do: pass --trace=, --metrics=, --audit=, "
            "--timeseries= and/or --critpath=");

    TraceSummary summary;
    if (!tracePath.empty()) {
        summary = validateTrace(tracePath);
        if (flags.getBool("require-spans") && summary.serveSpans == 0)
            bad("'" + tracePath + "' contains no serve spans");
        if (flags.getBool("require-decisions") && summary.decisions == 0)
            bad("'" + tracePath + "' contains no decision events");
        std::printf("%s: ok (%zu events: %zu spans [%zu serve, %zu "
                    "wait, %zu control], %zu instants [%zu decisions], "
                    "%zu flows)\n",
                    tracePath.c_str(), summary.events, summary.spans,
                    summary.serveSpans, summary.waitSpans,
                    summary.controlSpans, summary.instants,
                    summary.decisions, summary.flows);
    }
    if (!metricsPath.empty()) {
        validateMetrics(metricsPath);
        std::printf("%s: ok\n", metricsPath.c_str());
    }
    if (!auditPath.empty()) {
        const AuditSummary audit = validateAudit(auditPath);
        if (flags.getBool("require-audit-records") &&
            audit.records == 0)
            bad("'" + auditPath + "' contains no decision records");
        std::printf("%s: ok (%zu records: %zu select [%zu scored], "
                    "%zu recycle, %zu withdraw, %zu rpc_retry, "
                    "%zu stale_skip, %zu plan, "
                    "%zu cluster_rebalance)\n",
                    auditPath.c_str(), audit.records, audit.selects,
                    audit.scored, audit.recycles, audit.withdraws,
                    audit.rpcRetries, audit.staleSkips,
                    audit.fastcapPlans + audit.cuttlesysPlans,
                    audit.clusterRebalances);
    }
    if (!timeseriesPath.empty()) {
        const TimeseriesSummary ts =
            validateTimeseries(timeseriesPath);
        std::printf("%s: ok (%zu series, %zu points, %zu alerts)\n",
                    timeseriesPath.c_str(), ts.series, ts.points,
                    ts.alerts);
    }
    if (!critpathPath.empty()) {
        const CritPathSummary cp = validateCritPath(critpathPath);
        std::printf("%s: ok (%zu stages, %zu signatures, "
                    "%zu intervals, %zu misboosts)\n",
                    critpathPath.c_str(), cp.stages, cp.signatures,
                    cp.intervals, cp.misboosts);
    }
    return 0;
}
