#!/usr/bin/env python3
"""Render a self-contained HTML dashboard for PowerChief run telemetry.

Usage:
    report_html.py RUN.timeseries.json ... --out dashboard.html
    report_html.py results/                --out dashboard.html
    report_html.py --check [PATH ...]

Inputs are --timeseries-out JSON dumps and/or --critpath-out JSON
dumps (one per run; a directory is scanned recursively for "*.json"
files that carry either schema). The output is ONE html file with zero
external dependencies —
no JS frameworks, no CDN fonts, no image files: every chart is an
inline SVG sparkline, so the dashboard renders offline and diffs
cleanly in review.

Sections per run:
  * run header (scenario, sample count, series count),
  * the SLO burn-rate table when the dump embeds an "slo" report,
  * the anomaly-alert timeline (obs.alert records plotted over the
    sampled horizon, spikes up / drops down),
  * controller-health sparklines (health.* taps, budget headroom),
  * per-stage power/latency sparklines and the remaining series grouped
    by metric namespace.

Critical-path documents (schema "powerchief-critpath-v1", produced by
--critpath-out) get their own section: a per-stage waterfall of the
aggregate queue/serve/wasted/re-dispatch/retry segments, the share
quantiles, the top path signatures, and the controller's
bottleneck-agreement scoring with a per-interval agree/misboost strip.

--check runs the self-test: renders a synthetic document (plus any
PATHs given) and verifies the structural markers, exiting non-zero on
the first failure. Wired into tools/check.sh and ctest so a bitrotted
renderer fails the build gates.

Stdlib only: no third-party imports.
"""

import argparse
import html
import json
import os
import sys

SPARK_W = 260
SPARK_H = 48
PAD = 4

CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a202c; }
h1 { border-bottom: 2px solid #2b6cb0; padding-bottom: .2em; }
h2 { margin-top: 2em; color: #2b6cb0; }
h3 { margin-bottom: .3em; color: #4a5568; }
table { border-collapse: collapse; margin: .5em 0; }
th, td { border: 1px solid #cbd5e0; padding: .25em .6em;
         font-size: .85em; text-align: right; }
th { background: #edf2f7; }
.series-grid { display: flex; flex-wrap: wrap; gap: .8em; }
.spark { border: 1px solid #e2e8f0; border-radius: 4px;
         padding: .4em .6em; background: #fff; }
.spark .name { font-size: .75em; color: #4a5568;
               font-family: monospace; }
.spark .stats { font-size: .7em; color: #718096; }
.badge { display: inline-block; border-radius: 3px; color: #fff;
         padding: .1em .5em; font-size: .8em; }
.badge.ok { background: #2f855a; }
.badge.warn { background: #c05621; }
.badge.bad { background: #c53030; }
.alert-row { font-family: monospace; font-size: .8em; }
footer { margin-top: 3em; color: #718096; font-size: .8em; }
"""


def fail(msg):
    print("report_html: " + msg, file=sys.stderr)
    sys.exit(1)


def decode_times(entry):
    """Reverse the delta encoding into absolute microsecond stamps."""
    n = int(entry.get("n", 0))
    if n <= 0:
        return []
    times = [float(entry.get("t0_us", 0))]
    for dt in entry.get("dt_us", []):
        times.append(times[-1] + float(dt))
    if len(times) != n:
        fail("series has %d stamps for n=%d" % (len(times), n))
    return times


def fmt(value):
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return "%.4g" % value


def sparkline(name, times, values, unit=""):
    """One titled sparkline card (inline SVG polyline)."""
    stats = ""
    if values:
        lo, hi = min(values), max(values)
        last = values[-1]
        stats = "min %s &middot; max %s &middot; last %s" % (
            fmt(lo),
            fmt(hi),
            fmt(last),
        )
        span = (hi - lo) or 1.0
        t_lo, t_hi = times[0], times[-1]
        t_span = (t_hi - t_lo) or 1.0
        pts = []
        for t, v in zip(times, values):
            x = PAD + (t - t_lo) / t_span * (SPARK_W - 2 * PAD)
            y = SPARK_H - PAD - (v - lo) / span * (SPARK_H - 2 * PAD)
            pts.append("%.1f,%.1f" % (x, y))
        poly = (
            '<polyline fill="none" stroke="#2b6cb0" stroke-width="1.2" '
            'points="%s"/>' % " ".join(pts)
        )
    else:
        poly = (
            '<text x="%d" y="%d" font-size="10" fill="#a0aec0">'
            "no samples</text>" % (SPARK_W // 3, SPARK_H // 2)
        )
    label = html.escape(name) + (
        " <i>(%s)</i>" % html.escape(unit) if unit else ""
    )
    return (
        '<div class="spark"><div class="name">%s</div>'
        '<svg width="%d" height="%d" viewBox="0 0 %d %d">%s</svg>'
        '<div class="stats">%s</div></div>'
        % (label, SPARK_W, SPARK_H, SPARK_W, SPARK_H, poly, stats)
    )


def alert_timeline(alerts, horizon_s):
    """Alerts plotted over the run horizon: spikes up, drops down."""
    width, height, mid = 2 * SPARK_W, 64, 32
    marks = [
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#cbd5e0"/>'
        % (PAD, mid, width - PAD, mid)
    ]
    span = horizon_s or 1.0
    for alert in alerts:
        x = PAD + alert["t_s"] / span * (width - 2 * PAD)
        up = alert["direction"] > 0
        color = "#c53030" if up else "#2c7a7b"
        y = mid - 18 if up else mid + 18
        marks.append(
            '<circle cx="%.1f" cy="%d" r="4" fill="%s">'
            "<title>%s z=%.2f @ %.1fs</title></circle>"
            % (
                x,
                y,
                color,
                html.escape(alert.get("series", "?")),
                alert.get("z", 0.0),
                alert.get("t_s", 0.0),
            )
        )
    return '<svg width="%d" height="%d">%s</svg>' % (
        width,
        height,
        "".join(marks),
    )


def slo_badge(slo):
    burn = max(slo.get("fast_burn", 0.0), slo.get("slow_burn", 0.0))
    if burn < 1.0:
        return '<span class="badge ok">SLO healthy</span>'
    if burn < 2.0:
        return '<span class="badge warn">SLO burning</span>'
    return '<span class="badge bad">SLO violated</span>'


def slo_table(slo):
    head = (
        "<tr><th>target (s)</th><th>objective</th><th>total</th>"
        "<th>violations</th><th>violation (s)</th><th>fast burn</th>"
        "<th>slow burn</th><th>max fast</th><th>max slow</th></tr>"
    )
    row = "<tr>" + "".join(
        "<td>%s</td>" % fmt(float(slo.get(key, 0.0)))
        for key in (
            "target_s",
            "objective",
            "total",
            "violations",
            "violation_s",
            "fast_burn",
            "slow_burn",
            "max_fast_burn",
            "max_slow_burn",
        )
    ) + "</tr>"
    return "<table>%s%s</table>" % (head, row)


def group_of(name):
    if name.startswith("health."):
        return "Controller health"
    if name.startswith("latency.stage") or name.startswith("app.stage"):
        return "Per-stage latency & queues"
    if name.startswith("power.") or name.startswith("recycle."):
        return "Power"
    if name.startswith("slo."):
        return "SLO burn"
    if name.startswith("decision.") or name.startswith("control."):
        return "Control plane"
    if name.startswith("faults.") or name.startswith("rpc."):
        return "Faults & RPC"
    return "Other series"


GROUP_ORDER = [
    "Controller health",
    "SLO burn",
    "Per-stage latency & queues",
    "Power",
    "Control plane",
    "Faults & RPC",
    "Other series",
]


def render_run(name, doc):
    out = ["<h2>%s</h2>" % html.escape(name)]
    series = doc.get("series", {})
    samples = int(doc.get("samples", 0))
    out.append(
        "<p>%d samples &middot; %d series &middot; %d alerts</p>"
        % (samples, len(series), len(doc.get("alerts", [])))
    )

    slo = doc.get("slo")
    if isinstance(slo, dict):
        out.append("<h3>SLO %s</h3>" % slo_badge(slo))
        out.append(slo_table(slo))

    horizon_s = 0.0
    for entry in series.values():
        times = decode_times(entry)
        if times:
            horizon_s = max(horizon_s, times[-1] / 1e6)

    alerts = doc.get("alerts", [])
    out.append("<h3>Anomaly alerts (%d)</h3>" % len(alerts))
    if alerts:
        out.append(alert_timeline(alerts, horizon_s))
        out.append("<table><tr><th>t (s)</th><th>series</th>"
                   "<th>value</th><th>mean</th><th>z</th>"
                   "<th>dir</th></tr>")
        for alert in alerts:
            out.append(
                '<tr class="alert-row"><td>%.2f</td><td>%s</td>'
                "<td>%s</td><td>%s</td><td>%.2f</td><td>%s</td></tr>"
                % (
                    alert.get("t_s", 0.0),
                    html.escape(alert.get("series", "?")),
                    fmt(alert.get("value", 0.0)),
                    fmt(alert.get("mean", 0.0)),
                    alert.get("z", 0.0),
                    "spike" if alert.get("direction", 0) > 0 else "drop",
                )
            )
        out.append("</table>")
    else:
        out.append("<p>none</p>")

    groups = {}
    for sname in sorted(series):
        groups.setdefault(group_of(sname), []).append(sname)
    for group in GROUP_ORDER:
        names = groups.get(group)
        if not names:
            continue
        out.append("<h3>%s</h3>" % html.escape(group))
        out.append('<div class="series-grid">')
        for sname in names:
            entry = series[sname]
            out.append(
                sparkline(
                    sname,
                    [t / 1e6 for t in decode_times(entry)],
                    entry.get("v", []),
                    entry.get("unit", ""),
                )
            )
        out.append("</div>")
    return "".join(out)


# Segment palette of the critical-path waterfall (keys are the JSON
# field prefixes of the per-stage totals).
CP_SEGMENTS = [
    ("queue_s", "queue", "#ecc94b"),
    ("serve_s", "serve", "#2b6cb0"),
    ("wasted_s", "wasted", "#c53030"),
    ("redispatch_s", "re-dispatch", "#805ad5"),
    ("retry_s", "retry", "#2c7a7b"),
]


def critpath_waterfall(stages):
    """Per-stage horizontal stacked bars of the aggregate segments."""
    width, row_h, label_w = 2 * SPARK_W, 22, 46
    totals = [
        sum(float(st.get(key, 0.0)) for key, _label, _c in CP_SEGMENTS)
        for st in stages
    ]
    span = max(totals) or 1.0
    rows = []
    for idx, st in enumerate(stages):
        y = PAD + idx * row_h
        rows.append(
            '<text x="%d" y="%d" font-size="11" fill="#4a5568">'
            "s%d</text>" % (PAD, y + 14, int(st.get("stage", idx)))
        )
        x = float(label_w)
        for key, label, color in CP_SEGMENTS:
            sec = float(st.get(key, 0.0))
            if sec <= 0.0:
                continue
            w = sec / span * (width - label_w - PAD)
            rows.append(
                '<rect x="%.1f" y="%d" width="%.1f" height="%d" '
                'fill="%s"><title>%s %.4g s</title></rect>'
                % (x, y, max(w, 0.5), row_h - 6, color, label, sec)
            )
            x += w
    height = PAD * 2 + len(stages) * row_h
    legend = " &middot; ".join(
        '<span style="color:%s">&#9632;</span> %s' % (color, label)
        for _key, label, color in CP_SEGMENTS
    )
    return (
        '<svg class="waterfall" width="%d" height="%d">%s</svg>'
        '<div class="stats">%s</div>'
        % (width, height, "".join(rows), legend)
    )


def critpath_interval_strip(intervals):
    """Agree/misboost strip: one dot per control interval."""
    width, height, mid = 2 * SPARK_W, 40, 20
    marks = [
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#cbd5e0"/>'
        % (PAD, mid, width - PAD, mid)
    ]
    span = float(len(intervals)) or 1.0
    for idx, iv in enumerate(intervals):
        x = PAD + (idx + 0.5) / span * (width - 2 * PAD)
        if iv.get("agree"):
            color, y = "#2f855a", mid - 8
        elif iv.get("misboost"):
            color, y = "#c53030", mid + 8
        else:
            color, y = "#a0aec0", mid
        marks.append(
            '<circle cx="%.1f" cy="%d" r="3" fill="%s">'
            "<title>interval %d: dominant s%d @ %.1fs</title></circle>"
            % (
                x,
                y,
                color,
                int(iv.get("interval", idx + 1)),
                int(iv.get("dominant_stage", -1)),
                float(iv.get("t_s", 0.0)),
            )
        )
    return '<svg width="%d" height="%d">%s</svg>' % (
        width,
        height,
        "".join(marks),
    )


def render_critpath(name, doc):
    out = ["<h2>%s &mdash; critical path</h2>" % html.escape(name)]
    stages = doc.get("stages", [])
    ctl = doc.get("controller", {})
    out.append(
        "<p>%d queries profiled &middot; %d stages &middot; "
        "%d control intervals</p>"
        % (
            int(doc.get("queries", 0)),
            len(stages),
            int(ctl.get("intervals", 0)),
        )
    )

    out.append("<h3>Critical-path waterfall</h3>")
    if stages:
        out.append(critpath_waterfall(stages))
        out.append(
            "<table><tr><th>stage</th><th>paths</th><th>dominant</th>"
            "<th>share mean</th><th>share p50</th><th>share p95</th>"
            "<th>share p99</th><th>boosted hops</th>"
            "<th>mean MHz</th></tr>"
        )
        for st in stages:
            out.append(
                "<tr><td>s%d</td><td>%d</td><td>%d</td><td>%.3f</td>"
                "<td>%.3f</td><td>%.3f</td><td>%.3f</td><td>%d</td>"
                "<td>%.0f</td></tr>"
                % (
                    int(st.get("stage", -1)),
                    int(st.get("paths", 0)),
                    int(st.get("dominant", 0)),
                    float(st.get("share_mean", 0.0)),
                    float(st.get("share_p50", 0.0)),
                    float(st.get("share_p95", 0.0)),
                    float(st.get("share_p99", 0.0)),
                    int(st.get("boosted_hops", 0)),
                    float(st.get("mean_served_mhz", 0.0)),
                )
            )
        out.append("</table>")
    else:
        out.append("<p>no profiled queries</p>")

    signatures = doc.get("signatures", [])
    out.append("<h3>Top path signatures</h3>")
    if signatures:
        out.append("<table><tr><th>signature</th><th>count</th></tr>")
        for sig in signatures:
            out.append(
                '<tr><td style="text-align:left;font-family:monospace">'
                "%s</td><td>%d</td></tr>"
                % (
                    html.escape(sig.get("signature", "?")),
                    int(sig.get("count", 0)),
                )
            )
        out.append("</table>")
    else:
        out.append("<p>none</p>")

    out.append("<h3>Bottleneck agreement</h3>")
    scored = int(ctl.get("scored", 0))
    rate = float(ctl.get("agreement_rate", 0.0))
    badge = "ok" if rate >= 0.5 or scored == 0 else "warn"
    if int(ctl.get("misboosts", 0)) > scored / 2 and scored:
        badge = "bad"
    out.append(
        '<p><span class="badge %s">agreement %.1f%%</span> '
        "%d/%d scored intervals agree &middot; %d boosted &middot; "
        "%d misboosts &middot; mean shortening %.2f%%</p>"
        % (
            badge,
            100.0 * rate,
            int(ctl.get("agree", 0)),
            scored,
            int(ctl.get("boost_intervals", 0)),
            int(ctl.get("misboosts", 0)),
            float(ctl.get("mean_shortening_pct", 0.0)),
        )
    )
    intervals = doc.get("intervals", [])
    if intervals:
        out.append(critpath_interval_strip(intervals))
    return "".join(out)


def cluster_section(cluster):
    """The arbiter summary a fleet envelope may carry ("cluster")."""
    out = ["<h3>Cluster arbiter</h3>"]
    out.append(
        "<p>policy <b>%s</b> &middot; cap %s W &middot; "
        "%d rebalances &middot; %d grants &middot; "
        "%d reports (%d dropped) &middot; %d freeze events</p>"
        % (
            html.escape(str(cluster.get("policy", "?"))),
            fmt(float(cluster.get("cap_watts", 0.0))),
            int(cluster.get("rebalances", 0)),
            int(cluster.get("grants", 0)),
            int(cluster.get("reports", 0)),
            int(cluster.get("reports_dropped", 0)),
            int(cluster.get("freeze_events", 0)),
        )
    )
    nodes = cluster.get("nodes", [])
    if nodes:
        out.append(
            "<table><tr><th>node</th><th>assumed W</th>"
            "<th>last grant W</th><th>frozen</th>"
            "<th>reports</th></tr>"
        )
        for node in nodes:
            out.append(
                "<tr><td>n%d</td><td>%s</td><td>%s</td>"
                "<td>%s</td><td>%d</td></tr>"
                % (
                    int(node.get("node", -1)),
                    fmt(float(node.get("assumed_w", 0.0))),
                    fmt(float(node.get("last_grant_w", 0.0))),
                    "yes" if node.get("frozen") else "no",
                    int(node.get("reports", 0)),
                )
            )
        out.append("</table>")
    return "".join(out)


def render_fleet(name, doc):
    """A powerchief-sharded-v1 timeseries envelope: fleet header
    (envelope-level SLO and, when an arbiter ran, its cluster
    summary), then one run section per node document."""
    out = ["<h2>%s &mdash; fleet (%d nodes)</h2>"
           % (html.escape(name), len(doc.get("shards", [])))]
    slo = doc.get("slo")
    if isinstance(slo, dict):
        out.append("<h3>Fleet SLO %s</h3>" % slo_badge(slo))
        out.append(slo_table(slo))
    cluster = doc.get("cluster")
    if isinstance(cluster, dict):
        out.append(cluster_section(cluster))
    else:
        out.append("<p>no cluster arbiter (static split)</p>")
    for g, node_doc in enumerate(doc.get("shards", [])):
        if is_timeseries_doc(node_doc):
            out.append(render_run("%s · node%d" % (name, g), node_doc))
    return "".join(out)


def render(docs):
    body = ["<h1>PowerChief run dashboard</h1>"]
    for name, doc in docs:
        if is_critpath_doc(doc):
            body.append(render_critpath(name, doc))
        elif is_sharded_timeseries(doc):
            body.append(render_fleet(name, doc))
        else:
            body.append(render_run(name, doc))
    body.append(
        "<footer>generated by tools/report_html.py &mdash; "
        "self-contained, no external assets</footer>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        "<title>PowerChief dashboard</title><style>%s</style></head>"
        "<body>%s</body></html>" % (CSS, "".join(body))
    )


def is_timeseries_doc(doc):
    return (
        isinstance(doc, dict)
        and isinstance(doc.get("series"), dict)
        and "samples" in doc
    )


def is_critpath_doc(doc):
    return (
        isinstance(doc, dict)
        and doc.get("schema") == "powerchief-critpath-v1"
    )


def is_sharded_timeseries(doc):
    """A fleet run's merged envelope (see docs/OBSERVABILITY.md)."""
    return (
        isinstance(doc, dict)
        and doc.get("schema") == "powerchief-sharded-v1"
        and doc.get("artifact") == "timeseries"
        and isinstance(doc.get("shards"), list)
    )


def collect(paths):
    """Expand files/directories into (name, parsed doc) pairs."""
    docs = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in sorted(os.walk(path)):
                for fname in sorted(files):
                    if not fname.endswith(".json"):
                        continue
                    full = os.path.join(root, fname)
                    try:
                        with open(full, "rb") as handle:
                            doc = json.load(handle)
                    except (OSError, ValueError):
                        continue
                    if (is_timeseries_doc(doc) or is_critpath_doc(doc)
                            or is_sharded_timeseries(doc)):
                        docs.append(
                            (doc.get("scenario") or fname, doc)
                        )
        else:
            try:
                with open(path, "rb") as handle:
                    doc = json.load(handle)
            except OSError as err:
                fail("cannot open %r: %s" % (path, err))
            except ValueError as err:
                fail("%r is not valid JSON: %s" % (path, err))
            if (not is_timeseries_doc(doc) and not is_critpath_doc(doc)
                    and not is_sharded_timeseries(doc)):
                fail("%r carries neither the timeseries schema "
                     "(samples + series), the critpath schema "
                     "(powerchief-critpath-v1), nor a sharded "
                     "timeseries envelope (powerchief-sharded-v1)"
                     % path)
            docs.append((doc.get("scenario") or path, doc))
    return docs


def synthetic_doc():
    """A small in-memory document exercising every renderer path."""
    return {
        "samples": 4,
        "scenario": "selftest",
        "series": {
            "health.e2e_p99_s": {
                "kind": "gauge",
                "unit": "seconds",
                "n": 4,
                "dropped": 0,
                "t0_us": 1000000,
                "dt_us": [1000000, 1000000, 1000000],
                "v": [0.10, 0.12, 0.55, 0.11],
            },
            "control.intervals_total": {
                "kind": "counter",
                "unit": "",
                "n": 4,
                "dropped": 0,
                "t0_us": 1000000,
                "dt_us": [1000000, 1000000, 1000000],
                "v": [1, 2, 3, 4],
            },
            "power.headroom_watts": {
                "kind": "gauge",
                "unit": "watts",
                "n": 0,
                "dropped": 0,
                "t0_us": 0,
                "dt_us": [],
                "v": [],
            },
        },
        "alerts": [
            {
                "t_s": 3.0,
                "series": "health.e2e_p99_s",
                "value": 0.55,
                "mean": 0.11,
                "sigma": 0.01,
                "z": 44.0,
                "direction": 1,
            }
        ],
        "slo": {
            "target_s": 0.3,
            "objective": 0.99,
            "total": 100,
            "violations": 2,
            "violation_s": 1.5,
            "fast_burn": 2.0,
            "slow_burn": 0.5,
            "max_fast_burn": 3.0,
            "max_slow_burn": 0.8,
        },
    }


def synthetic_fleet_doc():
    """A two-node sharded envelope with an arbiter summary, covering
    the fleet renderer and the cluster section."""
    node = synthetic_doc()
    node.pop("slo", None)
    return {
        "schema": "powerchief-sharded-v1",
        "artifact": "timeseries",
        "scenario": "selftest-fleet",
        "nodes": 2,
        "cluster": {
            "cap_watts": 225.0,
            "policy": "proportional",
            "rebalances": 60,
            "grants": 41,
            "reports": 240,
            "reports_dropped": 12,
            "freeze_events": 1,
            "nodes": [
                {
                    "node": 0,
                    "assumed_w": 130.5,
                    "last_grant_w": 130.5,
                    "frozen": False,
                    "reports": 120,
                },
                {
                    "node": 1,
                    "assumed_w": 94.5,
                    "last_grant_w": 94.5,
                    "frozen": True,
                    "reports": 118,
                },
            ],
        },
        "shards": [node, json.loads(json.dumps(node))],
    }


def synthetic_critpath_doc():
    """A small critpath document exercising every renderer path."""
    return {
        "schema": "powerchief-critpath-v1",
        "scenario": "selftest-critpath",
        "queries": 6,
        "stages": [
            {
                "stage": 0,
                "paths": 6,
                "dominant": 1,
                "share_mean": 0.2,
                "share_p50": 0.2,
                "share_p95": 0.25,
                "share_p99": 0.25,
                "queue_s": 0.5,
                "serve_s": 1.0,
                "wasted_s": 0.0,
                "redispatch_s": 0.0,
                "retry_s": 0.0,
                "boosted_hops": 0,
                "mean_served_mhz": 2400.0,
            },
            {
                "stage": 1,
                "paths": 6,
                "dominant": 5,
                "share_mean": 0.8,
                "share_p50": 0.8,
                "share_p95": 0.85,
                "share_p99": 0.85,
                "queue_s": 2.0,
                "serve_s": 3.0,
                "wasted_s": 0.4,
                "redispatch_s": 0.2,
                "retry_s": 0.0,
                "boosted_hops": 3,
                "mean_served_mhz": 2900.0,
            },
        ],
        "signatures": [
            {"signature": "s0>s1x8", "count": 5},
            {"signature": "s0>s1x8!", "count": 1},
        ],
        "controller": {
            "intervals": 3,
            "scored": 3,
            "agree": 2,
            "boost_intervals": 3,
            "misboosts": 1,
            "agreement_rate": 2.0 / 3.0,
            "mean_shortening_pct": 4.2,
        },
        "intervals": [
            {
                "interval": 1,
                "t_s": 25.0,
                "queries": 2,
                "dominant_stage": 1,
                "dominant_share": 0.8,
                "mean_crit_s": 1.2,
                "boosted": [1],
                "agree": True,
                "misboost": False,
            },
            {
                "interval": 2,
                "t_s": 50.0,
                "queries": 2,
                "dominant_stage": 1,
                "dominant_share": 0.7,
                "mean_crit_s": 1.1,
                "boosted": [0],
                "agree": False,
                "misboost": True,
            },
            {
                "interval": 3,
                "t_s": 75.0,
                "queries": 2,
                "dominant_stage": 1,
                "dominant_share": 0.75,
                "mean_crit_s": 1.0,
                "boosted": [1],
                "agree": True,
                "misboost": False,
            },
        ],
    }


def self_check(extra_paths):
    docs = [
        ("selftest", synthetic_doc()),
        ("selftest-critpath", synthetic_critpath_doc()),
        ("selftest-fleet", synthetic_fleet_doc()),
    ] + collect(extra_paths)
    page = render(docs)
    for marker in (
        "<!DOCTYPE html>",
        "PowerChief run dashboard",
        "selftest",
        "health.e2e_p99_s",
        "polyline",
        "SLO",
        "Anomaly alerts",
        "no samples",
        "Critical-path waterfall",
        "waterfall",
        "Top path signatures",
        "s0&gt;s1x8!",
        "Bottleneck agreement",
        "misboosts",
        "fleet (2 nodes)",
        "Cluster arbiter",
        "proportional",
        "freeze events",
        "node1",
        "</html>",
    ):
        if marker not in page:
            fail("--check: marker %r missing from rendered page"
                 % marker)
    if "<script" in page or "http://" in page or "https://" in page:
        fail("--check: dashboard must be self-contained "
             "(no scripts or external URLs)")
    print(
        "report_html: check ok (%d run(s), %d bytes)"
        % (len(docs), len(page))
    )


def main():
    parser = argparse.ArgumentParser(
        description="render a self-contained HTML dashboard from "
        "--timeseries-out dumps"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="timeseries JSON files or directories to scan",
    )
    parser.add_argument(
        "--out", default="", help="output HTML path (default stdout)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="self-test the renderer (plus any PATHs) and exit",
    )
    args = parser.parse_args()

    if args.check:
        self_check(args.paths)
        return
    if not args.paths:
        fail("no inputs: pass timeseries JSON files or directories")
    docs = collect(args.paths)
    if not docs:
        fail("no timeseries documents found under the given paths")
    page = render(docs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(page)
        print(
            "report_html: wrote %s (%d run(s), %d bytes)"
            % (args.out, len(docs), len(page))
        )
    else:
        sys.stdout.write(page)


if __name__ == "__main__":
    main()
