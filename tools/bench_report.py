#!/usr/bin/env python3
"""Compose a BENCH_<pr>.json perf-trajectory entry from benchmark runs.

Takes two google-benchmark JSON files — the pre-change baseline and the
post-change run, both produced by ``micro_core --benchmark_format=json``
(use ``--benchmark_repetitions`` so medians are available) — and writes
the checked-in BENCH_<pr>.json consumed by tools/bench_gate.py.

Usage:
    tools/bench_report.py --pr 4 \
        --baseline-run pre.json --current-run post.json \
        --description "..." -o BENCH_4.json
"""

import argparse
import json
import sys


def load_medians(path):
    """Map run_name -> (median real_time, unit); plain entries fall back."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("run_name", bench.get("name", ""))
        aggregate = bench.get("aggregate_name")
        if aggregate not in (None, "median"):
            continue
        if aggregate == "median" or name not in out:
            out[name] = (bench["real_time"], bench.get("time_unit", "ns"))
    return out, doc.get("context", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, required=True)
    parser.add_argument("--baseline-run", required=True)
    parser.add_argument("--current-run", required=True)
    parser.add_argument("--description", default="")
    parser.add_argument("-o", "--output", required=True)
    args = parser.parse_args()

    baseline, _ = load_medians(args.baseline_run)
    current, context = load_medians(args.current_run)

    benchmarks = {}
    for name in sorted(set(baseline) | set(current)):
        pre = baseline.get(name)
        now = current.get(name)
        unit = (now or pre)[1]
        entry = {"unit": unit}
        if pre is not None:
            entry["baseline_real_time"] = pre[0]
        if now is not None:
            entry["current_real_time"] = now[0]
        if pre is not None and now is not None and now[0] > 0:
            entry["speedup"] = pre[0] / now[0]
        benchmarks[name] = entry

    doc = {
        "pr": args.pr,
        "description": args.description,
        "statistic": "median real_time over benchmark repetitions",
        "build": "Release (-O2 -DNDEBUG)",
        "machine": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
        },
        "benchmarks": benchmarks,
    }
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} ({len(benchmarks)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
