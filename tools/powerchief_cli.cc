/**
 * @file
 * powerchief-cli — run any scenario from the command line.
 *
 *   powerchief-cli --workload=sirius --policy=powerchief --load=high \
 *                  --duration=900 --seed=42 --artifacts=results/
 *
 * Workloads: sirius, sirius-mixed, nlp, websearch.
 * Policies: every canonical PolicyKind name (see policyKindNames());
 * unknown names are rejected at flag-parse time with the valid list.
 * QoS policies (pegasus/powerchief-conserve) switch to the Table 3
 * over-provisioned layout and require --qos (seconds); fixed-stage
 * takes the target stage from --fixed-stage.
 *
 * --seeds=1,2,3 sweeps the scenario over a seed list; the runs execute
 * concurrently through the sweep engine (--jobs/--no-cache/--cache-dir/
 * --audit, see exp/sweep.h).
 *
 * Observability (see docs/OBSERVABILITY.md): --trace-out=FILE exports a
 * Chrome/Perfetto trace of every query hop and control decision;
 * --metrics-out=FILE dumps the run's metrics registry as JSON (or CSV
 * by extension), snapshotted every --metrics-interval seconds;
 * --audit-out=FILE dumps the decision-audit log (every boost/recycle/
 * withdraw decision with its model inputs and prediction score);
 * --attribution prints the per-stage queue/serve decomposition of the
 * p95/p99 tail; --timeseries-out=FILE dumps per-control-interval series
 * of every metric plus the controller-health taps (delta-encoded JSON,
 * or OpenMetrics text via --metrics-format=openmetrics); --alerts runs
 * the online anomaly detectors (obs.alert audit records); --slo tracks
 * latency-SLO burn rates (--slo-target/--slo-objective/--slo-*-window)
 * and prints the burn table. In seed sweeps each run writes its own
 * "<file>.<scenario>.<ext>".
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "exp/artifacts.h"
#include "exp/config_loader.h"
#include "exp/report.h"
#include "exp/sweep.h"

using namespace pc;

namespace {

bool
pickWorkload(const std::string &name, WorkloadModel *out)
{
    if (name == "sirius")
        *out = WorkloadModel::sirius();
    else if (name == "sirius-mixed")
        *out = WorkloadModel::siriusMixed();
    else if (name == "nlp")
        *out = WorkloadModel::nlp();
    else if (name == "websearch")
        *out = WorkloadModel::webSearch();
    else if (name == "microservice")
        *out = WorkloadModel::microservice();
    else
        return false;
    return true;
}

bool
pickLevel(const std::string &name, LoadLevel *out)
{
    if (name == "low")
        *out = LoadLevel::Low;
    else if (name == "medium")
        *out = LoadLevel::Medium;
    else if (name == "high")
        *out = LoadLevel::High;
    else
        return false;
    return true;
}

/** Parse "1,2,3" into seeds; returns false on malformed input. */
bool
parseSeedList(const std::string &text, std::vector<int> *out)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string token = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (token.empty())
            return false;
        char *end = nullptr;
        const long v = std::strtol(token.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            return false;
        out->push_back(static_cast<int>(v));
        pos = comma == std::string::npos ? text.size() : comma + 1;
    }
    return !out->empty();
}

/**
 * Run the scenario (expanded over the seed list when --seeds is given)
 * through the sweep engine and print/persist every result.
 */
int
runScenarios(const FlagSet &flags, const Scenario &base,
             const std::vector<int> &seeds)
{
    std::vector<Scenario> scenarios;
    if (seeds.empty()) {
        scenarios.push_back(base);
    } else {
        for (int seed : seeds) {
            Scenario sc = base;
            sc.seed = static_cast<std::uint64_t>(seed);
            sc.name = base.name + "/seed" + std::to_string(seed);
            scenarios.push_back(std::move(sc));
        }
    }

    // Sharded-fleet topology knobs (see docs/PERFORMANCE.md). The
    // node-group count is part of the scenario (and its cache key);
    // --shards, in addSweepFlags, only picks the worker-thread count.
    const long nodeGroupsFlag = flags.getInt("node-groups");
    if (nodeGroupsFlag < 0)
        fatal("--node-groups must be >= 0 (got %ld)", nodeGroupsFlag);
    if (nodeGroupsFlag > 0) {
        for (Scenario &sc : scenarios) {
            sc.nodeGroups = static_cast<int>(nodeGroupsFlag);
            sc.remoteFraction = flags.getDouble("remote-fraction");
            sc.interNodeLatency =
                SimTime::msec(flags.getDouble("inter-node-latency"));
        }
    }

    // Cluster budget-tree knobs (see docs/ARCHITECTURE.md). Applied
    // only when set so a --config file's cluster section survives.
    if (flags.isSet("cluster-policy")) {
        ClusterPolicyKind kind = ClusterPolicyKind::None;
        if (!parseClusterPolicyKind(flags.getString("cluster-policy"),
                                    &kind))
            fatal("unknown --cluster-policy '%s' (valid: %s)",
                  flags.getString("cluster-policy").c_str(),
                  clusterPolicyKindNames().c_str());
        for (Scenario &sc : scenarios)
            sc.clusterPolicy = kind;
    }
    if (flags.isSet("rebalance-interval")) {
        for (Scenario &sc : scenarios)
            sc.rebalanceInterval =
                SimTime::sec(flags.getDouble("rebalance-interval"));
    }
    if (flags.isSet("cluster-budget")) {
        for (Scenario &sc : scenarios)
            sc.clusterBudget = Watts(flags.getDouble("cluster-budget"));
    }

    // Topology validation at parse time, with the offender named —
    // bad values must die here, not in the arrival-rate arithmetic.
    for (const Scenario &sc : scenarios) {
        if (const std::string err = scenarioTopologyError(sc);
            !err.empty())
            fatal("scenario '%s': %s", sc.name.c_str(), err.c_str());
    }

    // --faults wins over a "faults" section in --config.
    if (!flags.getString("faults").empty()) {
        std::string error;
        auto plan = faultPlanFromFile(flags.getString("faults"), &error);
        if (!plan) {
            std::cerr << "fault plan error: " << error << "\n";
            return 2;
        }
        for (Scenario &sc : scenarios)
            sc.faults = *plan;
    }

    SweepOptions options = sweepOptionsFromFlags(flags);
    options.recordTraces = flags.getBool("traces") ||
        !flags.getString("artifacts").empty();
    SweepRunner sweep(options);
    const std::vector<RunResult> results = sweep.runAll(scenarios);

    printRawResults(std::cout, results);
    printTailAttribution(std::cout, results);
    printSloReports(std::cout, results);
    if (!flags.getString("artifacts").empty()) {
        ArtifactWriter writer(flags.getString("artifacts"));
        for (const RunResult &result : results)
            std::printf("artifacts written to %s\n",
                        writer.writeRun(result).c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("powerchief-cli");
    flags.addString("workload", "sirius",
                    "sirius | sirius-mixed | nlp | websearch | "
                    "microservice");
    flags.addString("policy", "powerchief",
                    "control policy (one of: " + policyKindNames() +
                    ")");
    flags.addInt("fixed-stage", 0,
                 "target stage for --policy=fixed-stage");
    flags.addString("load", "high", "low | medium | high");
    flags.addDouble("qps", 0.0,
                    "explicit arrival rate (overrides --load)");
    flags.addDouble("budget", 13.56, "power budget in watts");
    flags.addDouble("qos", 0.0,
                    "QoS latency target in seconds (pegasus/conserve)");
    flags.addDouble("duration", 900.0, "simulated seconds");
    flags.addInt("seed", 42, "random seed");
    flags.addString("artifacts", "",
                    "directory for CSV artifacts (empty = none)");
    flags.addBool("traces", false, "record time-series traces");
    flags.addString("config", "",
                    "JSON config file describing workload+scenario "
                    "(overrides workload/policy/load flags)");
    flags.addString("seeds", "",
                    "comma-separated seed list: sweep the scenario "
                    "over these seeds (overrides --seed)");
    flags.addString("faults", "",
                    "JSON fault-injection plan applied to the run "
                    "(see docs/ROBUSTNESS.md)");
    flags.addInt("node-groups", 0,
                 "run N replicated node groups on the sharded engine "
                 "(0 = single-node scenario; see docs/PERFORMANCE.md)");
    flags.addDouble("remote-fraction", 0.1,
                    "fraction of each group's arrivals sprayed to a "
                    "remote group (needs --node-groups > 1)");
    flags.addDouble("inter-node-latency", 10.0,
                    "cross-group network latency in milliseconds (the "
                    "sharded engine's conservative lookahead)");
    flags.addString("cluster-policy", "none",
                    "fleet power-arbiter split policy (one of: " +
                    clusterPolicyKindNames() +
                    "; needs --node-groups > 1)");
    flags.addDouble("rebalance-interval", 5.0,
                    "cluster arbiter rebalance period in seconds");
    flags.addDouble("cluster-budget", 0.0,
                    "fleet-wide power cap in watts "
                    "(0 = node-groups x --budget)");
    addSweepFlags(&flags);

    if (!flags.parse(argc, argv)) {
        if (!flags.helpRequested())
            std::cerr << "error: " << flags.error() << "\n\n";
        flags.printUsage(std::cerr);
        return flags.helpRequested() ? 0 : 2;
    }

    std::vector<int> seeds;
    if (!flags.getString("seeds").empty() &&
        !parseSeedList(flags.getString("seeds"), &seeds)) {
        std::cerr << "malformed --seeds list '"
                  << flags.getString("seeds") << "'\n";
        return 2;
    }

    Scenario base;
    if (!flags.getString("config").empty()) {
        const ConfigLoadResult loaded =
            scenarioFromFile(flags.getString("config"));
        if (!loaded.ok()) {
            std::cerr << "config error: " << loaded.error << "\n";
            return 2;
        }
        base = *loaded.scenario;
        if (flags.isSet("duration"))
            base.duration = SimTime::sec(flags.getDouble("duration"));
        return runScenarios(flags, base, seeds);
    }

    WorkloadModel workload = WorkloadModel::sirius();
    LoadLevel level = LoadLevel::High;
    PolicyKind policy = PolicyKind::PowerChief;
    if (!pickWorkload(flags.getString("workload"), &workload)) {
        std::cerr << "unknown workload '" << flags.getString("workload")
                  << "'\n";
        return 2;
    }
    if (!pickLevel(flags.getString("load"), &level)) {
        std::cerr << "unknown load level '" << flags.getString("load")
                  << "'\n";
        return 2;
    }
    if (!parsePolicyKind(flags.getString("policy"), &policy)) {
        std::cerr << "unknown policy '" << flags.getString("policy")
                  << "' (valid: " << policyKindNames() << ")\n";
        return 2;
    }

    Scenario sc;
    const bool qosMode = policy == PolicyKind::Pegasus ||
        policy == PolicyKind::PowerChiefConserve;
    if (qosMode) {
        const double qos = flags.getDouble("qos");
        if (qos <= 0.0) {
            std::cerr << "--qos is required for QoS policies\n";
            return 2;
        }
        std::vector<int> counts(
            static_cast<std::size_t>(workload.numStages()), 4);
        sc = Scenario::conservation(workload, counts, qos,
                                    SimTime::sec(10), policy,
                                    flags.getInt("seed"));
    } else {
        sc = Scenario::mitigation(workload, level, policy,
                                  flags.getInt("seed"));
        sc.powerBudget = Watts(flags.getDouble("budget"));
        if (policy == PolicyKind::FixedStage)
            sc.fixedStage = flags.getInt("fixed-stage");
    }
    if (flags.getDouble("qps") > 0.0)
        sc.load = LoadProfile::constant(flags.getDouble("qps"));
    sc.duration = SimTime::sec(flags.getDouble("duration"));

    return runScenarios(flags, sc, seeds);
}
