#!/usr/bin/env python3
"""Render or validate a policy-arena JSON report.

Usage:
    arena_report.py REPORT.json            # print the comparison table
    arena_report.py --check REPORT.json    # validate against the schema

The report is produced by `bench/arena --out=REPORT.json` (schema
"powerchief-arena-v3"; v2 added the per-point "slo" burn-rate object,
v3 the per-point "critpath" bottleneck-agreement object and the audit
"misboosts" count).
--check enforces the schema contract the ctest fixture pins: the schema
tag, at least the full policy roster per matrix cell, and the
presence/type of every per-point field. Exits 0 on success, 1 with a
diagnostic on the first violation.

Stdlib only: no third-party imports.
"""

import argparse
import json
import sys

SCHEMA = "powerchief-arena-v3"

# Every point must carry these numeric fields.
NUMERIC_FIELDS = [
    "budget_w",
    "submitted",
    "completed",
    "avg_s",
    "p95_s",
    "p99_s",
    "max_s",
    "qos_target_s",
    "qos_violation_rate",
    "avg_power_w",
    "energy_j",
]

STRING_FIELDS = ["workload", "load", "faults", "policy"]

AUDIT_FIELDS = [
    "mape_pct",
    "scored",
    "flips",
    "selects",
    "plans",
    "withdraws",
    "stale_skips",
    "misboosts",
]

CRITPATH_FIELDS = [
    "agreement_rate",
    "scored",
    "agree",
    "boost_intervals",
    "misboosts",
    "mean_shortening_pct",
]

SLO_FIELDS = [
    "fast_burn",
    "max_fast_burn",
    "max_slow_burn",
    "objective",
    "slow_burn",
    "target_s",
    "total",
    "violation_s",
    "violations",
]

# The full roster bench/arena runs; --check requires every one of them
# in every matrix cell.
POLICIES = [
    "baseline",
    "freq-boost",
    "inst-boost",
    "powerchief",
    "fixed-stage",
    "pegasus",
    "powerchief-conserve",
    "fastcap",
    "cuttlesys",
]


def fail(msg):
    print("arena_report: " + msg, file=sys.stderr)
    sys.exit(1)


def cell_key(point):
    return (
        point["workload"],
        point["load"],
        point["budget_w"],
        point["faults"],
    )


def check(report):
    if not isinstance(report, dict):
        fail("report root is not an object")
    if report.get("schema") != SCHEMA:
        fail("schema is %r, want %r" % (report.get("schema"), SCHEMA))
    points = report.get("points")
    if not isinstance(points, list) or not points:
        fail("report lacks a non-empty 'points' array")
    if report.get("policies") != len(POLICIES):
        fail(
            "report 'policies' is %r, want %d"
            % (report.get("policies"), len(POLICIES))
        )

    cells = {}
    for i, point in enumerate(points):
        if not isinstance(point, dict):
            fail("point %d is not an object" % i)
        for field in STRING_FIELDS:
            if not isinstance(point.get(field), str):
                fail("point %d field %r missing or not a string" % (i, field))
        for field in NUMERIC_FIELDS:
            value = point.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail("point %d field %r missing or not a number" % (i, field))
            if value < 0:
                fail("point %d field %r is negative" % (i, field))
        audit = point.get("audit")
        if not isinstance(audit, dict):
            fail("point %d lacks an 'audit' object" % i)
        for field in AUDIT_FIELDS:
            value = audit.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(
                    "point %d audit field %r missing or not a number"
                    % (i, field)
                )
        critpath = point.get("critpath")
        if not isinstance(critpath, dict):
            fail("point %d lacks a 'critpath' object" % i)
        for field in CRITPATH_FIELDS:
            value = critpath.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(
                    "point %d critpath field %r missing or not a number"
                    % (i, field)
                )
            # mean_shortening_pct may legitimately be negative (paths
            # grew after a boost); everything else is a count or rate.
            if field != "mean_shortening_pct" and value < 0:
                fail("point %d critpath field %r is negative" % (i, field))
        if not 0.0 <= critpath["agreement_rate"] <= 1.0:
            fail("point %d critpath agreement_rate outside [0,1]" % i)
        if critpath["agree"] > critpath["scored"]:
            fail("point %d critpath agree exceeds scored" % i)
        slo = point.get("slo")
        if not isinstance(slo, dict):
            fail("point %d lacks an 'slo' object" % i)
        for field in SLO_FIELDS:
            value = slo.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(
                    "point %d slo field %r missing or not a number"
                    % (i, field)
                )
            if value < 0:
                fail("point %d slo field %r is negative" % (i, field))
        if slo["violations"] > slo["total"]:
            fail("point %d slo violations exceed total" % i)
        if point["policy"] not in POLICIES:
            fail("point %d has unknown policy %r" % (i, point["policy"]))
        if point["qos_violation_rate"] > 1.0:
            fail("point %d qos_violation_rate above 1" % i)
        cells.setdefault(cell_key(point), set()).add(point["policy"])

    for key, seen in sorted(cells.items()):
        missing = [p for p in POLICIES if p not in seen]
        if missing:
            fail(
                "cell %r is missing policies: %s" % (key, ", ".join(missing))
            )
    print(
        "arena_report: ok (%d points, %d cells, %d policies)"
        % (len(points), len(cells), len(POLICIES))
    )


def render(report):
    points = report.get("points", [])
    cells = {}
    for point in points:
        cells.setdefault(cell_key(point), []).append(point)
    for key, rows in sorted(cells.items()):
        workload, load, budget, faults = key
        print(
            "\n%s @ %s load, %.2f W, %s fabric (QoS %.2f s)"
            % (workload, load, budget, faults, rows[0]["qos_target_s"])
        )
        print(
            "  %-20s %9s %9s %9s %9s %8s %8s %8s"
            % ("policy", "avg s", "p95 s", "p99 s", "QoS.viol", "watts",
               "MAPE %", "agree%")
        )
        for row in rows:
            print(
                "  %-20s %9.4f %9.4f %9.4f %8.1f%% %8.2f %8.2f %7.1f%%"
                % (
                    row["policy"],
                    row["avg_s"],
                    row["p95_s"],
                    row["p99_s"],
                    100.0 * row["qos_violation_rate"],
                    row["avg_power_w"],
                    row["audit"]["mape_pct"],
                    100.0 * row.get("critpath", {}).get(
                        "agreement_rate", 0.0
                    ),
                )
            )


def main():
    parser = argparse.ArgumentParser(
        description="render or validate an arena JSON report"
    )
    parser.add_argument("report", help="path to the arena --out JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the report against the pinned schema",
    )
    args = parser.parse_args()

    try:
        with open(args.report, "rb") as handle:
            report = json.load(handle)
    except OSError as err:
        fail("cannot open %r: %s" % (args.report, err))
    except ValueError as err:
        fail("%r is not valid JSON: %s" % (args.report, err))

    if args.check:
        check(report)
    else:
        render(report)


if __name__ == "__main__":
    main()
