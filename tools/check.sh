#!/usr/bin/env bash
# Sanitizer gate for the test suite.
#
# Builds two instrumented variants and runs the full ctest suite in
# each:
#   build-tsan  — ThreadSanitizer (data races in the sweep engine)
#   build-asan  — AddressSanitizer + UndefinedBehaviorSanitizer
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_variant() {
    local name="$1" flags="$2"
    echo "=== ${name} (${flags}) ==="
    cmake -B "build-${name}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${flags}" >/dev/null
    cmake --build "build-${name}" -j "${jobs}"
    ctest --test-dir "build-${name}" --output-on-failure -j "${jobs}"
}

run_variant tsan "-fsanitize=thread -g"
run_variant asan "-fsanitize=address,undefined -fno-sanitize-recover=all -g"

echo "All sanitizer variants passed."
