#!/usr/bin/env bash
# Sanitizer + optimized-build gate for the test suite.
#
# Builds three variants and runs the full ctest suite in each:
#   build-tsan    — ThreadSanitizer (data races in the sweep engine)
#   build-asan    — AddressSanitizer + UndefinedBehaviorSanitizer
#   build-release — Release (-O2 -DNDEBUG): the configuration the
#                   microbenchmarks measure, so the optimized build is
#                   also the one tests cover (and the allocation-
#                   counting tests run un-sanitized here)
#
# A trace-validation step follows: a small scenario is run with
# --trace-out/--metrics-out/--audit-out under the asan build and the
# produced files are checked structurally with trace-validate (valid
# JSON, monotone spans, resolvable flow ids, decision events present,
# audit records consistent with their summary). Then trace-diff
# replays the pinned golden Fig. 11 scenario and gates its latency and
# prediction numbers against tests/golden/fig11_trace.json.
#
# The sharded engine gets two dedicated legs: the TSan build drives a
# multi-group run through the worker pool (races in mailbox drains and
# window barriers), and the Release build writes every artifact at
# --shards 1 and --shards 8 and cmp's them byte-for-byte — the
# determinism contract from docs/PERFORMANCE.md. Both repeat with the
# cluster power arbiter on (docs/ARCHITECTURE.md), and a gated
# bench/fleet smoke demands the arbiter strictly beat the static
# equal split at the same global cap.
#
# Finally the Release build runs the micro_core benchmark suite and
# gates it against the checked-in BENCH_*.json perf trajectory
# (tools/bench_gate.py). The gate is enforced: any benchmark slower
# than the recorded numbers by more than PC_BENCH_TOLERANCE (default
# 1.15x) fails the build. On a machine unlike the one that recorded
# the baseline, set PC_BENCH_TOLERANCE higher or to a huge value to
# make the leg informational again.
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_variant() {
    local name="$1" type="$2" flags="$3"
    echo "=== ${name} (${type} ${flags}) ==="
    cmake -B "build-${name}" -S . \
        -DCMAKE_BUILD_TYPE="${type}" \
        -DCMAKE_CXX_FLAGS="${flags}" >/dev/null
    cmake --build "build-${name}" -j "${jobs}"
    ctest --test-dir "build-${name}" --output-on-failure -j "${jobs}"
}

run_variant tsan RelWithDebInfo "-fsanitize=thread -g"
run_variant asan RelWithDebInfo \
    "-fsanitize=address,undefined -fno-sanitize-recover=all -g"
run_variant release Release ""

echo "=== sharded engine under TSan ==="
# The mega scenario's workload through the real worker pool: window
# barriers, cross-shard mailbox drains and the merge paths all execute
# under ThreadSanitizer. Oversubscribed (4 groups, 4 workers on
# however few cores this machine has) on purpose — preemption points
# shake out ordering races that a matched worker count can hide. The
# duration is TSan-sized; bench/mega_scenario runs the full shape.
./build-tsan/tools/powerchief-cli \
    --workload=microservice --policy=powerchief --load=high \
    --duration=60 --seed=3 --no-cache \
    --node-groups=4 --shards=4 --remote-fraction=0.2 >/dev/null
# Same shape with the cluster arbiter on: report/grant traffic rides
# the cross-shard mailboxes, so the arbiter's rebalance rounds and the
# nodes' cap retargets all execute under TSan too.
./build-tsan/tools/powerchief-cli \
    --workload=microservice --policy=powerchief --load=high \
    --duration=60 --seed=3 --no-cache \
    --node-groups=4 --shards=4 --remote-fraction=0.2 \
    --cluster-policy=proportional --rebalance-interval=2 >/dev/null

echo "=== trace validation ==="
tracedir="$(mktemp -d)"
trap 'rm -rf "${tracedir}"' EXIT
./build-asan/tools/powerchief-cli \
    --workload=sirius --policy=powerchief --load=high \
    --duration=300 --seed=3 --no-cache \
    --trace-out="${tracedir}/run.json" \
    --metrics-out="${tracedir}/run.metrics.json" \
    --audit-out="${tracedir}/run.audit.json" >/dev/null
./build-asan/tools/trace-validate \
    --trace="${tracedir}/run.json" \
    --metrics="${tracedir}/run.metrics.json" \
    --audit="${tracedir}/run.audit.json" \
    --require-spans --require-decisions --require-audit-records

echo "=== sharded determinism (release, --shards 1 vs 8) ==="
# The determinism contract (docs/PERFORMANCE.md): every artifact a
# sharded run writes must be byte-identical at any worker count. The
# Release build — the one with real instruction reordering — writes
# the full artifact set at --shards 1 and --shards 8 and cmp's them,
# then trace-validate checks the sharded envelopes structurally.
for s in 1 8; do
    mkdir -p "${tracedir}/sh${s}"
    ./build-release/tools/powerchief-cli \
        --workload=sirius --policy=powerchief --load=high \
        --duration=120 --seed=3 --no-cache --slo --alerts \
        --node-groups=4 --shards="${s}" --remote-fraction=0.2 \
        --trace-out="${tracedir}/sh${s}/run.trace.json" \
        --metrics-out="${tracedir}/sh${s}/run.metrics.json" \
        --audit-out="${tracedir}/sh${s}/run.audit.json" \
        --timeseries-out="${tracedir}/sh${s}/run.ts.json" \
        --critpath-out="${tracedir}/sh${s}/run.critpath.json" >/dev/null
done
diff -r "${tracedir}/sh1" "${tracedir}/sh8"
./build-release/tools/trace-validate \
    --trace="${tracedir}/sh1/run.trace.json" \
    --metrics="${tracedir}/sh1/run.metrics.json" \
    --audit="${tracedir}/sh1/run.audit.json" \
    --timeseries="${tracedir}/sh1/run.ts.json" \
    --require-spans
./build-release/tools/trace-validate \
    --critpath="${tracedir}/sh1/run.critpath.json"

echo "=== cluster determinism (release, --shards 1 vs 8) ==="
# The same contract with the budget tree live: the arbiter's grants
# must not depend on worker scheduling. The timeseries envelope now
# carries the "cluster" summary, which trace-validate checks —
# including that the assumed per-node bounds conserve the fleet cap.
for s in 1 8; do
    mkdir -p "${tracedir}/cl${s}"
    ./build-release/tools/powerchief-cli \
        --workload=microservice --policy=powerchief --load=high \
        --duration=120 --seed=3 --no-cache --slo --alerts \
        --node-groups=4 --shards="${s}" --remote-fraction=0.2 \
        --cluster-policy=waterfill --rebalance-interval=2 \
        --audit-out="${tracedir}/cl${s}/run.audit.json" \
        --timeseries-out="${tracedir}/cl${s}/run.ts.json" >/dev/null
done
diff -r "${tracedir}/cl1" "${tracedir}/cl8"
./build-release/tools/trace-validate \
    --audit="${tracedir}/cl1/run.audit.json" \
    --timeseries="${tracedir}/cl1/run.ts.json"
python3 tools/report_html.py --check "${tracedir}/cl1/run.ts.json"

echo "=== timeseries + dashboard validation ==="
# The same scenario with per-interval sampling, anomaly detection and
# SLO tracking on: trace-validate checks the delta-encoded dump and
# the obs.alert audit records; the OpenMetrics exposition goes through
# the linter; report_html renders the dump (self-test + real input).
./build-asan/tools/powerchief-cli \
    --workload=sirius --policy=powerchief --load=high \
    --duration=300 --seed=3 --no-cache --slo --alerts \
    --timeseries-out="${tracedir}/run.ts.json" \
    --audit-out="${tracedir}/run.ts.audit.json" >/dev/null
./build-asan/tools/trace-validate \
    --timeseries="${tracedir}/run.ts.json" \
    --audit="${tracedir}/run.ts.audit.json"
./build-asan/tools/powerchief-cli \
    --workload=sirius --policy=powerchief --load=high \
    --duration=300 --seed=3 --no-cache \
    --metrics-format=openmetrics \
    --timeseries-out="${tracedir}/run.om" >/dev/null
python3 tools/openmetrics_lint.py "${tracedir}/run.om"
python3 tools/report_html.py --check "${tracedir}/run.ts.json"
python3 tools/report_html.py "${tracedir}/run.ts.json" \
    --out="${tracedir}/dashboard.html" >/dev/null

echo "=== critical-path validation (jobs byte-identity) ==="
# The --critpath-out dump must be byte-identical at any --jobs value,
# clean and lossy (docs/OBSERVABILITY.md). A two-seed sweep forces the
# parallel path; the lossy variant adds message drops, a mid-run crash
# and flaky telemetry so wasted/re-dispatch segments are exercised.
cat > "${tracedir}/lossy.json" <<'EOF'
{
  "seed": 18,
  "bus": [{"drop": 0.03, "reorder": 0.1, "reorder_jitter_ms": 5}],
  "crashes": [{"stage": 1, "at_sec": 120, "recovery_sec": 20}],
  "telemetry": {"stale": 0.1, "truncate": 0.05, "perf_ctl_fail": 0.2}
}
EOF
for variant in clean lossy; do
    fault_flag=""
    if [[ "${variant}" == lossy ]]; then
        fault_flag="--faults=${tracedir}/lossy.json"
    fi
    for j in 1 3; do
        mkdir -p "${tracedir}/cp-${variant}-j${j}"
        ./build-asan/tools/powerchief-cli \
            --workload=sirius --policy=powerchief --load=high \
            --duration=300 --seeds=3,4 --jobs="${j}" --no-cache \
            ${fault_flag} \
            --critpath-out="${tracedir}/cp-${variant}-j${j}/run.critpath.json" \
            >/dev/null
    done
    diff -r "${tracedir}/cp-${variant}-j1" "${tracedir}/cp-${variant}-j3"
    for f in "${tracedir}/cp-${variant}-j1"/*.json; do
        ./build-asan/tools/trace-validate --critpath="${f}"
    done
done
python3 tools/report_html.py --check \
    "${tracedir}/cp-lossy-j1"/*.json
python3 tools/report_html.py "${tracedir}/run.ts.json" \
    "${tracedir}/cp-lossy-j1" \
    --out="${tracedir}/dashboard-critpath.html" >/dev/null

echo "=== golden trace diff ==="
./build-asan/tools/trace-diff \
    --baseline=tests/golden/fig11_trace.json --fresh-fig11
./build-asan/tools/trace-diff \
    --baseline=tests/golden/fastcap_fig11_trace.json \
    --fresh-golden=fastcap
./build-asan/tools/trace-diff \
    --baseline=tests/golden/cuttlesys_fig11_trace.json \
    --fresh-golden=cuttlesys

echo "=== policy arena smoke (asan, cached) ==="
# A one-cell matrix over the full policy roster, through the sweep
# cache: the second invocation must serve every point from cache and
# produce a byte-identical report (docs/POLICIES.md).
./build-asan/bench/arena --jobs "${jobs}" \
    --workloads=sirius --loads=high --budgets=13.56 \
    --duration-sec=60 --cache-dir="${tracedir}/arena-cache" \
    --out="${tracedir}/arena.json" >/dev/null
./build-asan/bench/arena --jobs "${jobs}" \
    --workloads=sirius --loads=high --budgets=13.56 \
    --duration-sec=60 --cache-dir="${tracedir}/arena-cache" \
    --out="${tracedir}/arena2.json" >/dev/null
cmp "${tracedir}/arena.json" "${tracedir}/arena2.json"
python3 tools/arena_report.py --check "${tracedir}/arena.json"

echo "=== fleet arena smoke (release, cached, gated) ==="
# The cluster layer's acceptance bar (docs/ARCHITECTURE.md): at the
# same global cap, the demand-proportional arbiter must strictly beat
# the static cap/N split on fleet p99 AND SLO-violation-seconds in
# every fabric, clean and lossy. Run twice through the cache: the
# second pass must serve every point from cache and produce a
# byte-identical report.
./build-release/bench/fleet --jobs "${jobs}" \
    --duration-sec=60 --cache-dir="${tracedir}/fleet-cache" \
    --out="${tracedir}/fleet.json" >/dev/null
./build-release/bench/fleet --jobs "${jobs}" \
    --duration-sec=60 --cache-dir="${tracedir}/fleet-cache" \
    --out="${tracedir}/fleet2.json" >/dev/null
cmp "${tracedir}/fleet.json" "${tracedir}/fleet2.json"

echo "=== chaos sweep (fault-matrix invariants, asan) ==="
# Drops, duplicates, reordering, crashes, stale/truncated telemetry,
# RAPL and PERF_CTL faults. The runner aborts on any query-conservation
# or budget-ledger violation; --audit re-runs sampled points
# single-threaded and fails on any divergence from the parallel pass.
./build-asan/bench/chaos_sweep --jobs "${jobs}" --no-cache --audit

echo "=== perf gate (enforced, tolerance ${PC_BENCH_TOLERANCE:-1.15}x) ==="
latest_bench="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
if [[ -n "${latest_bench}" ]]; then
    ./build-release/bench/micro_core \
        --benchmark_filter='BM_Simulator|BM_EndToEnd' \
        --benchmark_format=json \
        --benchmark_out="${tracedir}/bench.json" >/dev/null
    python3 tools/bench_gate.py --run "${tracedir}/bench.json" \
        --baseline "${latest_bench}" \
        --max-regression "${PC_BENCH_TOLERANCE:-1.15}"
else
    echo "no BENCH_*.json checked in; skipping"
fi

echo "All sanitizer variants, the Release leg, the sharded TSan and"
echo "shards-1-vs-8 byte-identity legs (cluster arbiter included),"
echo "trace validation, the timeseries/dashboard checks, the"
echo "critical-path byte-identity legs, the golden trace diffs, the"
echo "policy-arena smoke, the gated fleet-arena smoke, the chaos"
echo "sweep and the enforced perf gate passed."
