#!/usr/bin/env bash
# Sanitizer gate for the test suite.
#
# Builds two instrumented variants and runs the full ctest suite in
# each:
#   build-tsan  — ThreadSanitizer (data races in the sweep engine)
#   build-asan  — AddressSanitizer + UndefinedBehaviorSanitizer
#
# A trace-validation step follows: a small scenario is run with
# --trace-out/--metrics-out under the asan build and the produced
# files are checked structurally with trace-validate (valid JSON,
# monotone spans, resolvable flow ids, decision events present).
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_variant() {
    local name="$1" flags="$2"
    echo "=== ${name} (${flags}) ==="
    cmake -B "build-${name}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${flags}" >/dev/null
    cmake --build "build-${name}" -j "${jobs}"
    ctest --test-dir "build-${name}" --output-on-failure -j "${jobs}"
}

run_variant tsan "-fsanitize=thread -g"
run_variant asan "-fsanitize=address,undefined -fno-sanitize-recover=all -g"

echo "=== trace validation ==="
tracedir="$(mktemp -d)"
trap 'rm -rf "${tracedir}"' EXIT
./build-asan/tools/powerchief-cli \
    --workload=sirius --policy=powerchief --load=high \
    --duration=300 --seed=3 --no-cache \
    --trace-out="${tracedir}/run.json" \
    --metrics-out="${tracedir}/run.metrics.json" >/dev/null
./build-asan/tools/trace-validate \
    --trace="${tracedir}/run.json" \
    --metrics="${tracedir}/run.metrics.json" \
    --require-spans --require-decisions

echo "All sanitizer variants and the trace validation passed."
