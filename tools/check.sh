#!/usr/bin/env bash
# Sanitizer gate for the test suite.
#
# Builds two instrumented variants and runs the full ctest suite in
# each:
#   build-tsan  — ThreadSanitizer (data races in the sweep engine)
#   build-asan  — AddressSanitizer + UndefinedBehaviorSanitizer
#
# A trace-validation step follows: a small scenario is run with
# --trace-out/--metrics-out/--audit-out under the asan build and the
# produced files are checked structurally with trace-validate (valid
# JSON, monotone spans, resolvable flow ids, decision events present,
# audit records consistent with their summary). Finally trace-diff
# replays the pinned golden Fig. 11 scenario and gates its latency and
# prediction numbers against tests/golden/fig11_trace.json.
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_variant() {
    local name="$1" flags="$2"
    echo "=== ${name} (${flags}) ==="
    cmake -B "build-${name}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${flags}" >/dev/null
    cmake --build "build-${name}" -j "${jobs}"
    ctest --test-dir "build-${name}" --output-on-failure -j "${jobs}"
}

run_variant tsan "-fsanitize=thread -g"
run_variant asan "-fsanitize=address,undefined -fno-sanitize-recover=all -g"

echo "=== trace validation ==="
tracedir="$(mktemp -d)"
trap 'rm -rf "${tracedir}"' EXIT
./build-asan/tools/powerchief-cli \
    --workload=sirius --policy=powerchief --load=high \
    --duration=300 --seed=3 --no-cache \
    --trace-out="${tracedir}/run.json" \
    --metrics-out="${tracedir}/run.metrics.json" \
    --audit-out="${tracedir}/run.audit.json" >/dev/null
./build-asan/tools/trace-validate \
    --trace="${tracedir}/run.json" \
    --metrics="${tracedir}/run.metrics.json" \
    --audit="${tracedir}/run.audit.json" \
    --require-spans --require-decisions --require-audit-records

echo "=== golden trace diff ==="
./build-asan/tools/trace-diff \
    --baseline=tests/golden/fig11_trace.json --fresh-fig11

echo "All sanitizer variants, trace validation and the golden trace"
echo "diff passed."
