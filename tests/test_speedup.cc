/** @file Unit tests for SpeedupTable / SpeedupBook. */

#include <gtest/gtest.h>

#include "core/speedup.h"

namespace pc {
namespace {

TEST(SpeedupTable, BasicAccess)
{
    SpeedupTable t({1.0, 0.8, 0.6});
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.numLevels(), 3);
    EXPECT_DOUBLE_EQ(t.at(0), 1.0);
    EXPECT_DOUBLE_EQ(t.at(2), 0.6);
}

TEST(SpeedupTable, DefaultIsInvalid)
{
    SpeedupTable t;
    EXPECT_FALSE(t.valid());
}

TEST(SpeedupTable, RatioIsAlgorithmOnesR2OverR1)
{
    SpeedupTable t({1.0, 0.8, 0.5});
    EXPECT_DOUBLE_EQ(t.ratio(0, 2), 0.5);
    EXPECT_DOUBLE_EQ(t.ratio(1, 2), 0.625);
    EXPECT_DOUBLE_EQ(t.ratio(2, 2), 1.0);
    // Downward move yields a slowdown factor > 1.
    EXPECT_DOUBLE_EQ(t.ratio(2, 0), 2.0);
}

TEST(SpeedupTable, FlatTableAllowed)
{
    // A fully memory-bound service gains nothing from frequency.
    SpeedupTable t({1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(t.ratio(0, 2), 1.0);
}

TEST(SpeedupTableDeath, EmptyIsFatal)
{
    EXPECT_EXIT(SpeedupTable(std::vector<double>{}),
                testing::ExitedWithCode(1), "empty");
}

TEST(SpeedupTableDeath, IncreasingIsFatal)
{
    EXPECT_EXIT(SpeedupTable({1.0, 1.2}), testing::ExitedWithCode(1),
                "non-increasing");
}

TEST(SpeedupTableDeath, OutOfRangeLevelPanics)
{
    SpeedupTable t({1.0, 0.9});
    EXPECT_DEATH((void)t.at(2), "outside table");
    EXPECT_DEATH((void)t.at(-1), "outside table");
}

TEST(SpeedupBook, SetAndGetPerStage)
{
    SpeedupBook book;
    book.setStage(0, SpeedupTable({1.0, 0.9}));
    book.setStage(2, SpeedupTable({1.0, 0.5}));
    EXPECT_EQ(book.numStages(), 3);
    EXPECT_DOUBLE_EQ(book.stage(0).at(1), 0.9);
    EXPECT_DOUBLE_EQ(book.stage(2).at(1), 0.5);
}

TEST(SpeedupBook, OverwriteStage)
{
    SpeedupBook book;
    book.setStage(0, SpeedupTable({1.0, 0.9}));
    book.setStage(0, SpeedupTable({1.0, 0.7}));
    EXPECT_DOUBLE_EQ(book.stage(0).at(1), 0.7);
}

TEST(SpeedupBookDeath, MissingStagePanics)
{
    SpeedupBook book;
    book.setStage(0, SpeedupTable({1.0}));
    EXPECT_DEATH((void)book.stage(1), "no speedup table");
    // The gap left by sparse setStage is also invalid.
    SpeedupBook sparse;
    sparse.setStage(1, SpeedupTable({1.0}));
    EXPECT_DEATH((void)sparse.stage(0), "no speedup table");
}

TEST(SpeedupBookDeath, NegativeStagePanics)
{
    SpeedupBook book;
    EXPECT_DEATH(book.setStage(-1, SpeedupTable({1.0})), "negative");
}

} // namespace
} // namespace pc
