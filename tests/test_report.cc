/** @file Tests for the reporting helpers and the logger. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "exp/report.h"

namespace pc {
namespace {

RunResult
resultWith(std::string name, double avg, double p99)
{
    RunResult r;
    r.scenario = std::move(name);
    r.completed = 100;
    r.avgLatencySec = avg;
    r.p99LatencySec = p99;
    r.maxLatencySec = p99 * 2;
    r.avgPowerWatts = 10.0;
    return r;
}

TEST(Report, BannerFormat)
{
    std::ostringstream out;
    printBanner(out, "Figure 9", "a caption");
    EXPECT_NE(out.str().find("Figure 9: a caption"), std::string::npos);
    EXPECT_NE(out.str().find("====="), std::string::npos);
}

TEST(Report, ImprovementTableComputesRatios)
{
    std::ostringstream out;
    const RunResult baseline = resultWith("base", 10.0, 40.0);
    printImprovementTable(out, baseline,
                          {resultWith("fast", 2.0, 8.0)});
    EXPECT_NE(out.str().find("5.00x"), std::string::npos);
    EXPECT_NE(out.str().find("fast"), std::string::npos);
}

TEST(Report, RawResultsListEveryRun)
{
    std::ostringstream out;
    printRawResults(out, {resultWith("a", 1.0, 2.0),
                          resultWith("b", 3.0, 4.0)});
    EXPECT_NE(out.str().find("a"), std::string::npos);
    EXPECT_NE(out.str().find("b"), std::string::npos);
    EXPECT_NE(out.str().find("completed"), std::string::npos);
}

TEST(Report, PrintSeriesResamples)
{
    TimeSeries ts("x");
    ts.append(SimTime::sec(1), 1.0);
    ts.append(SimTime::sec(9), 3.0);
    std::ostringstream out;
    printSeries(out, "row", ts, SimTime::zero(), SimTime::sec(10), 2,
                1);
    EXPECT_EQ(out.str(), "  row: 1.0 3.0\n");
}

TEST(Logging, LevelsFilterMessages)
{
    // The logger writes to stderr; here we only verify level gating
    // logic through the public API.
    Logger &logger = Logger::instance();
    const LogLevel before = logger.level();
    logger.setLevel(LogLevel::Error);
    EXPECT_EQ(logger.level(), LogLevel::Error);
    logWarn("suppressed warning %d", 1); // must not crash
    logger.setLevel(LogLevel::Debug);
    logDebug("visible debug %s", "msg");
    logInfo("info");
    logError("error");
    logger.setLevel(before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                testing::ExitedWithCode(1), "bad config x");
}

} // namespace
} // namespace pc
