/** @file Unit tests for the statistics module. */

#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/percentile.h"
#include "stats/streaming.h"
#include "stats/timeseries.h"
#include "stats/window.h"

namespace pc {
namespace {

// ---------------------------------------------------------- Streaming

TEST(StreamingStats, EmptyIsZero)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MeanMinMax)
{
    StreamingStats s;
    for (double x : {3.0, 1.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StreamingStats, SampleVariance)
{
    StreamingStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StreamingStats, MergeEqualsSequential)
{
    StreamingStats a;
    StreamingStats b;
    StreamingStats all;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(0, 10);
        (i < 50 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty)
{
    StreamingStats a;
    a.add(1.0);
    StreamingStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(StreamingStats, Reset)
{
    StreamingStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

// ------------------------------------------------------- ExactPercentile

TEST(ExactPercentile, EmptyReturnsZero)
{
    ExactPercentile p;
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
    EXPECT_TRUE(p.empty());
}

TEST(ExactPercentile, SingleSample)
{
    ExactPercentile p;
    p.add(7.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 7.0);
}

TEST(ExactPercentile, MedianInterpolates)
{
    ExactPercentile p;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        p.add(x);
    EXPECT_DOUBLE_EQ(p.median(), 2.5);
}

TEST(ExactPercentile, KnownQuantiles)
{
    ExactPercentile p;
    for (int i = 0; i <= 100; ++i)
        p.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.25), 25.0);
    EXPECT_DOUBLE_EQ(p.p99(), 99.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
}

TEST(ExactPercentile, OrderInsensitive)
{
    std::vector<double> values{9, 1, 5, 3, 7, 2, 8, 4, 6};
    ExactPercentile a;
    for (double v : values)
        a.add(v);
    std::sort(values.begin(), values.end());
    ExactPercentile b;
    for (double v : values)
        b.add(v);
    for (double q : {0.1, 0.5, 0.9})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(ExactPercentile, AddAfterQueryStaysCorrect)
{
    ExactPercentile p;
    p.add(1.0);
    p.add(3.0);
    EXPECT_DOUBLE_EQ(p.median(), 2.0);
    p.add(100.0);
    EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(ExactPercentile, MergeEmptySidesAreNoOps)
{
    ExactPercentile a;
    ExactPercentile empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty); // empty other: nothing to absorb
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.median(), 1.5);

    ExactPercentile b;
    b.merge(a); // merge into empty
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.median(), 1.5);
}

TEST(ExactPercentile, SelfMergeDoublesWithoutChangingQuantiles)
{
    ExactPercentile p;
    for (double x : {4.0, 1.0, 3.0, 2.0})
        p.add(x);
    const double before = p.quantile(0.75);
    p.merge(p); // aliased source: must not iterate a growing vector
    EXPECT_EQ(p.count(), 8u);
    EXPECT_DOUBLE_EQ(p.median(), 2.5);
    EXPECT_DOUBLE_EQ(p.quantile(0.75), before);
}

TEST(ExactPercentile, MergeAfterQueryMatchesUnionOrder)
{
    ExactPercentile a;
    ExactPercentile b;
    for (double x : {9.0, 1.0, 5.0})
        a.add(x);
    for (double x : {2.0, 8.0})
        b.add(x);
    // Query first so both sides are in their sorted state, then merge:
    // the union must re-sort, not interleave stale sorted runs.
    EXPECT_DOUBLE_EQ(a.median(), 5.0);
    EXPECT_DOUBLE_EQ(b.median(), 5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.median(), 5.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 9.0);
}

TEST(ExactPercentile, DuplicatesDominateTheirRankRange)
{
    ExactPercentile p;
    for (double x : {2.0, 5.0, 5.0, 5.0, 5.0, 5.0, 8.0})
        p.add(x);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(p.median(), 5.0);
    // Any rank inside the tied run answers the tied value exactly.
    EXPECT_DOUBLE_EQ(p.quantile(0.3), 5.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.7), 5.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 8.0);
}

TEST(ExactPercentile, ExtremeQuantilesInterpolate)
{
    ExactPercentile p;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        p.add(x);
    // p0/p100 hit the extremes; near-extremes interpolate linearly
    // between the two closest order statistics.
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 40.0);
    EXPECT_NEAR(p.quantile(0.01), 10.3, 1e-12);
    EXPECT_NEAR(p.quantile(0.99), 39.7, 1e-12);
}

TEST(ExactPercentile, Clear)
{
    ExactPercentile p;
    p.add(1.0);
    p.clear();
    EXPECT_TRUE(p.empty());
}

TEST(ExactPercentileDeath, OutOfRangeQuantilePanics)
{
    ExactPercentile p;
    p.add(1.0);
    EXPECT_DEATH((void)p.quantile(1.5), "outside");
}

// ------------------------------------------------------------ P2Quantile

TEST(P2Quantile, ExactBelowFiveSamples)
{
    P2Quantile q(0.5);
    q.add(3.0);
    q.add(1.0);
    EXPECT_DOUBLE_EQ(q.value(), 2.0);
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, EmptyIsZero)
{
    P2Quantile q(0.99);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2Quantile, ConstantStreamStaysConstant)
{
    P2Quantile q(0.95);
    for (int i = 0; i < 1000; ++i)
        q.add(4.25);
    EXPECT_EQ(q.count(), 1000u);
    EXPECT_DOUBLE_EQ(q.value(), 4.25);
}

TEST(P2Quantile, TracksUniformMedian)
{
    P2Quantile q(0.5);
    Rng rng(1);
    for (int i = 0; i < 20000; ++i)
        q.add(rng.uniform(0.0, 1.0));
    EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, TracksLognormalTail)
{
    P2Quantile q(0.99);
    ExactPercentile exact;
    Rng rng(2);
    for (int i = 0; i < 50000; ++i) {
        const double x = rng.lognormal(1.0, 0.6);
        q.add(x);
        exact.add(x);
    }
    EXPECT_NEAR(q.value(), exact.p99(), 0.15 * exact.p99());
}

TEST(P2QuantileDeath, DegenerateQuantileLevelPanics)
{
    EXPECT_DEATH(P2Quantile(0.0), "0,1");
    EXPECT_DEATH(P2Quantile(1.0), "0,1");
}

// ---------------------------------------------------------- MovingWindow

TEST(MovingWindow, EmptyBehaviour)
{
    MovingWindow w(SimTime::sec(10));
    EXPECT_TRUE(w.empty());
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
    EXPECT_DOUBLE_EQ(w.quantile(0.5), 0.0);
}

TEST(MovingWindow, MeanOfRetained)
{
    MovingWindow w(SimTime::sec(10));
    w.add(SimTime::sec(1), 1.0);
    w.add(SimTime::sec(2), 3.0);
    EXPECT_DOUBLE_EQ(w.mean(), 2.0);
    EXPECT_EQ(w.size(), 2u);
}

TEST(MovingWindow, EvictsOldSamples)
{
    MovingWindow w(SimTime::sec(10));
    w.add(SimTime::sec(0), 100.0);
    w.add(SimTime::sec(5), 1.0);
    w.add(SimTime::sec(11), 3.0); // evicts the t=0 sample
    EXPECT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w.mean(), 2.0);
}

TEST(MovingWindow, ExplicitEvict)
{
    MovingWindow w(SimTime::sec(10));
    w.add(SimTime::sec(0), 1.0);
    w.evict(SimTime::sec(20));
    EXPECT_TRUE(w.empty());
}

TEST(MovingWindow, BoundaryExactlyAtCutoffSurvives)
{
    MovingWindow w(SimTime::sec(10));
    w.add(SimTime::sec(0), 1.0);
    w.evict(SimTime::sec(10)); // cutoff = 0; samples at t >= 0 stay
    EXPECT_EQ(w.size(), 1u);
}

TEST(MovingWindow, MaxAndQuantile)
{
    MovingWindow w(SimTime::sec(100));
    for (int i = 1; i <= 100; ++i)
        w.add(SimTime::sec(i * 0.5), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(w.max(), 100.0);
    EXPECT_NEAR(w.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(w.quantile(0.5), 50.5, 1.0);
}

// ------------------------------------------------------------ TimeSeries

TEST(MovingWindow, BatchQuantilesMatchSingleCalls)
{
    MovingWindow w(SimTime::sec(60));
    for (int i = 1; i <= 100; ++i)
        w.add(SimTime::msec(i * 10), static_cast<double>(i));
    const double qs[3] = {0.5, 0.95, 0.99};
    double out[3] = {-1.0, -1.0, -1.0};
    w.quantiles(qs, out, 3);
    EXPECT_DOUBLE_EQ(out[0], w.quantile(0.5));
    EXPECT_DOUBLE_EQ(out[1], w.quantile(0.95));
    EXPECT_DOUBLE_EQ(out[2], w.quantile(0.99));
}

TEST(MovingWindow, BatchQuantilesEdgeCases)
{
    MovingWindow w(SimTime::sec(60));
    // Zero quantiles requested: must not touch the output (and must
    // not pay the copy+sort — the arbiter report path may probe
    // conditionally).
    double sentinel = 42.0;
    w.quantiles(nullptr, &sentinel, 0);
    EXPECT_DOUBLE_EQ(sentinel, 42.0);
    // Empty window: all zeros, no crash.
    const double qs[2] = {0.0, 1.0};
    double out[2] = {-1.0, -1.0};
    w.quantiles(qs, out, 2);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(TimeSeries, AppendAndSize)
{
    TimeSeries ts("x");
    EXPECT_TRUE(ts.empty());
    ts.append(SimTime::sec(1), 1.0);
    ts.append(SimTime::sec(2), 2.0);
    EXPECT_EQ(ts.size(), 2u);
    EXPECT_EQ(ts.name(), "x");
}

TEST(TimeSeries, MeanOverRange)
{
    TimeSeries ts;
    for (int i = 0; i < 10; ++i)
        ts.append(SimTime::sec(i), static_cast<double>(i));
    // [2, 5) -> values 2, 3, 4.
    EXPECT_DOUBLE_EQ(ts.meanOver(SimTime::sec(2), SimTime::sec(5)), 3.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 4.5);
}

TEST(TimeSeries, ValueAtCarriesLast)
{
    TimeSeries ts;
    ts.append(SimTime::sec(1), 10.0);
    ts.append(SimTime::sec(5), 20.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(SimTime::sec(0)), 0.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(SimTime::sec(3)), 10.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(SimTime::sec(5)), 20.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(SimTime::sec(99)), 20.0);
}

TEST(TimeSeries, ResampleAveragesBuckets)
{
    TimeSeries ts;
    ts.append(SimTime::sec(0), 2.0);
    ts.append(SimTime::sec(1), 4.0);
    ts.append(SimTime::sec(5), 10.0);
    const auto out = ts.resample(SimTime::zero(), SimTime::sec(10), 2);
    ASSERT_EQ(out.size(), 2u);
    // Bucket [0, 5) holds the first two points; [5, 10) holds the third.
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(TimeSeries, ResampleCarriesThroughEmptyBuckets)
{
    TimeSeries ts;
    ts.append(SimTime::sec(1), 7.0);
    ts.append(SimTime::sec(9), 9.0);
    const auto out = ts.resample(SimTime::zero(), SimTime::sec(12), 4);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 7.0);
    EXPECT_DOUBLE_EQ(out[1], 7.0); // empty [3,6): carry forward
    EXPECT_DOUBLE_EQ(out[2], 7.0); // empty [6,9): carry forward
    EXPECT_DOUBLE_EQ(out[3], 9.0); // t=9 lands in [9,12)
}

TEST(TimeSeries, ResampleDegenerateInputs)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.resample(SimTime::zero(), SimTime::sec(1), 0).empty());
    EXPECT_TRUE(
        ts.resample(SimTime::sec(1), SimTime::sec(1), 4).empty());
}

TEST(TimeSeries, CsvOutput)
{
    TimeSeries ts;
    ts.append(SimTime::sec(1), 0.5);
    std::ostringstream out;
    ts.writeCsv(out);
    EXPECT_EQ(out.str(), "1,0.5\n");
}

TEST(TimeSeriesDeath, NonMonotonicAppendPanics)
{
    TimeSeries ts("t");
    ts.append(SimTime::sec(2), 1.0);
    EXPECT_DEATH(ts.append(SimTime::sec(1), 1.0), "non-monotonic");
}

// Property sweep: P2 tracks the exact estimator across quantile levels.
class P2Accuracy : public testing::TestWithParam<double>
{
};

TEST_P(P2Accuracy, WithinToleranceOfExact)
{
    const double q = GetParam();
    P2Quantile p2(q);
    ExactPercentile exact;
    Rng rng(23);
    for (int i = 0; i < 30000; ++i) {
        const double x = rng.lognormal(2.0, 0.4);
        p2.add(x);
        exact.add(x);
    }
    const double truth = exact.quantile(q);
    EXPECT_NEAR(p2.value(), truth, 0.1 * truth);
}

INSTANTIATE_TEST_SUITE_P(QuantileLevels, P2Accuracy,
                         testing::Values(0.25, 0.5, 0.75, 0.9, 0.95,
                                         0.99));

} // namespace
} // namespace pc
