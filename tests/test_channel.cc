/** @file Unit tests for typed RPC channels and the node agent. */

#include <gtest/gtest.h>

#include "core/node_agent.h"
#include "rpc/channel.h"

namespace pc {
namespace {

struct EchoReq
{
    int value = 0;
};

struct EchoResp
{
    int value = 0;
};

class ChannelTest : public testing::Test
{
  protected:
    ChannelTest() : bus(&sim) {}

    Simulator sim;
    MessageBus bus;
};

TEST_F(ChannelTest, CallReturnsResponse)
{
    RpcServer<EchoReq, EchoResp> server(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value * 2};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client");

    int got = 0;
    RpcStatus status = RpcStatus::Timeout;
    client.call(server.endpoint(), EchoReq{21},
                [&](RpcStatus s, const EchoResp *resp) {
                    status = s;
                    got = resp ? resp->value : -1;
                });
    EXPECT_EQ(client.inFlight(), 1u);
    sim.run();
    EXPECT_EQ(status, RpcStatus::Ok);
    EXPECT_EQ(got, 42);
    EXPECT_EQ(client.inFlight(), 0u);
    EXPECT_EQ(server.served(), 1u);
}

TEST_F(ChannelTest, ConcurrentCallsCorrelate)
{
    RpcServer<EchoReq, EchoResp> server(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value + 100};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client");

    std::vector<int> got;
    for (int i = 0; i < 5; ++i) {
        client.call(server.endpoint(), EchoReq{i},
                    [&got](RpcStatus, const EchoResp *resp) {
                        got.push_back(resp->value);
                    });
    }
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{100, 101, 102, 103, 104}));
}

TEST_F(ChannelTest, TimeoutWhenServerGone)
{
    auto server = std::make_unique<RpcServer<EchoReq, EchoResp>>(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::sec(1));
    const EndpointId target = server->endpoint();
    server.reset(); // unregister before the request arrives

    RpcStatus status = RpcStatus::Ok;
    bool respWasNull = false;
    client.call(target, EchoReq{1},
                [&](RpcStatus s, const EchoResp *resp) {
                    status = s;
                    respWasNull = (resp == nullptr);
                });
    sim.run();
    EXPECT_EQ(status, RpcStatus::Timeout);
    EXPECT_TRUE(respWasNull);
    EXPECT_EQ(client.inFlight(), 0u);
}

TEST_F(ChannelTest, ResponseBeforeTimeoutCancelsIt)
{
    RpcServer<EchoReq, EchoResp> server(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::sec(5));
    int calls = 0;
    client.call(server.endpoint(), EchoReq{1},
                [&](RpcStatus, const EchoResp *) { ++calls; });
    sim.runUntil(SimTime::sec(60));
    EXPECT_EQ(calls, 1); // continuation ran exactly once
}

TEST_F(ChannelTest, DelayedBusStillCorrelates)
{
    bus.setDeliveryDelay(SimTime::msec(10));
    RpcServer<EchoReq, EchoResp> server(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value * 3};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::sec(1));
    int got = 0;
    SimTime when;
    client.call(server.endpoint(), EchoReq{5},
                [&](RpcStatus, const EchoResp *resp) {
                    got = resp->value;
                    when = sim.now();
                });
    sim.run();
    EXPECT_EQ(got, 15);
    EXPECT_EQ(when, SimTime::msec(20)); // two one-way hops
}

TEST_F(ChannelTest, DestroyWithCallsInFlightCancelsTimeouts)
{
    // Regression: the deadline timer used to capture the client by raw
    // pointer without being cancelled in the destructor, so destroying
    // a client with calls in flight and then advancing past the
    // deadline dispatched into freed memory (caught by ASan).
    auto server = std::make_unique<RpcServer<EchoReq, EchoResp>>(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value};
        });
    auto client = std::make_unique<RpcClient<EchoReq, EchoResp>>(
        &sim, &bus, "client", SimTime::sec(1));
    const EndpointId target = server->endpoint();
    server.reset(); // no reply will ever arrive

    bool continuationRan = false;
    client->call(target, EchoReq{1},
                 [&](RpcStatus, const EchoResp *) {
                     continuationRan = true;
                 });
    const std::size_t before = sim.liveEvents();
    client.reset();
    // The deadline timer must have been cancelled with the client.
    EXPECT_EQ(sim.liveEvents(), before - 1);
    sim.runUntil(SimTime::sec(5)); // past the deadline: must not fire
    EXPECT_FALSE(continuationRan);
}

TEST_F(ChannelTest, RetryWithBackoffEventuallySucceeds)
{
    RpcServer<EchoReq, EchoResp> server(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value * 2};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::msec(10));
    RpcRetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoff = SimTime::msec(1);
    policy.multiplier = 2.0;
    client.setRetryPolicy(policy);

    std::vector<std::pair<int, SimTime>> retriesSeen;
    client.setRetryHook([&](std::uint64_t, int attempt, SimTime b) {
        retriesSeen.emplace_back(attempt, b);
    });

    // Lossy fabric: eat the first two requests bound for the server.
    int toDrop = 2;
    bus.setFaultFilter(
        [&](const std::string &toName,
            const MessagePtr &) -> std::optional<BusFaultAction> {
            if (toName == "echo" && toDrop > 0) {
                --toDrop;
                BusFaultAction action;
                action.drop = true;
                return action;
            }
            return std::nullopt;
        });

    RpcStatus status = RpcStatus::Timeout;
    int got = 0;
    client.call(server.endpoint(), EchoReq{21},
                [&](RpcStatus s, const EchoResp *resp) {
                    status = s;
                    got = resp ? resp->value : -1;
                });
    sim.run();
    EXPECT_EQ(status, RpcStatus::Ok);
    EXPECT_EQ(got, 42);
    EXPECT_EQ(client.retries(), 2u);
    EXPECT_EQ(client.failures(), 0u);
    ASSERT_EQ(retriesSeen.size(), 2u);
    EXPECT_EQ(retriesSeen[0],
              (std::pair<int, SimTime>{2, SimTime::msec(1)}));
    EXPECT_EQ(retriesSeen[1],
              (std::pair<int, SimTime>{3, SimTime::msec(2)}));
    EXPECT_EQ(server.served(), 1u);
    EXPECT_EQ(client.inFlight(), 0u);
}

TEST_F(ChannelTest, RetryExhaustionFails)
{
    auto server = std::make_unique<RpcServer<EchoReq, EchoResp>>(
        &bus, "echo", [](const EchoReq &req) {
            return EchoResp{req.value};
        });
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::msec(10));
    RpcRetryPolicy policy;
    policy.maxAttempts = 3;
    client.setRetryPolicy(policy);
    const EndpointId target = server->endpoint();
    server.reset();

    RpcStatus status = RpcStatus::Ok;
    client.call(target, EchoReq{1},
                [&](RpcStatus s, const EchoResp *) { status = s; });
    sim.run();
    EXPECT_EQ(status, RpcStatus::Failed);
    EXPECT_EQ(client.retries(), 2u);  // attempts 2 and 3
    EXPECT_EQ(client.failures(), 1u); // one call, one failure
    EXPECT_EQ(client.inFlight(), 0u);
}

TEST_F(ChannelTest, BadReplyCountedNotCrashed)
{
    RpcClient<EchoReq, EchoResp> client(&sim, &bus, "client",
                                        SimTime::sec(1));
    int hookCalls = 0;
    client.setBadReplyHook([&] { ++hookCalls; });

    // A mis-typed payload lands on the client's reply endpoint, as if
    // the fabric corrupted or mis-routed a message.
    const EndpointId me = *bus.lookup("client");
    bus.send(me, std::make_shared<ResponseEnvelope<EchoReq>>(
                     7, EchoReq{1}));
    sim.run();
    EXPECT_EQ(client.badReplies(), 1u);
    EXPECT_EQ(hookCalls, 1);
}

class AgentTest : public testing::Test
{
  protected:
    AgentTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 4), bus(&sim),
          agent(&sim, &bus, &chip, "node0"),
          control(&sim, &bus, "cc", SimTime::sec(1))
    {
        coreId = *chip.acquireCore(0);
        EXPECT_TRUE(control.connect("node0", bus));
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    NodeAgent agent;
    RemoteChipControl control;
    int coreId = -1;
};

TEST_F(AgentTest, RemoteFrequencyChangeApplies)
{
    RpcStatus status = RpcStatus::Timeout;
    int mhz = 0;
    control.setFrequency(coreId, MHz(2100),
                         [&](RpcStatus s, int m) {
                             status = s;
                             mhz = m;
                         });
    sim.run();
    EXPECT_EQ(status, RpcStatus::Ok);
    EXPECT_EQ(mhz, 2100);
    EXPECT_EQ(chip.core(coreId).frequency(), MHz(2100));
    EXPECT_EQ(agent.requestsServed(), 1u);
}

TEST_F(AgentTest, OffLadderFrequencyRejectedGracefully)
{
    int mhz = -1;
    control.setFrequency(coreId, MHz(1234),
                         [&](RpcStatus, int m) { mhz = m; });
    sim.run();
    EXPECT_EQ(mhz, 1200); // unchanged operating point reported back
    EXPECT_EQ(chip.core(coreId).frequency(), MHz(1200));
}

TEST_F(AgentTest, RemotePowerReadout)
{
    chip.core(coreId).setBusy(true);
    sim.runUntil(SimTime::sec(10));
    double joules = 0.0;
    control.readPower([&](RpcStatus, double j) { joules = j; });
    sim.run();
    EXPECT_NEAR(joules, model.activeWatts(0).value() * 10.0, 0.1);
}

TEST_F(AgentTest, RetriesSurviveLossyFabric)
{
    RpcRetryPolicy policy;
    policy.maxAttempts = 4;
    policy.initialBackoff = SimTime::msec(50);
    control.setRetryPolicy(policy);

    // Eat the first two set-frequency requests on the wire.
    int toDrop = 2;
    bus.setFaultFilter(
        [&](const std::string &toName,
            const MessagePtr &) -> std::optional<BusFaultAction> {
            if (toName == "node0/set-frequency" && toDrop > 0) {
                --toDrop;
                BusFaultAction action;
                action.drop = true;
                return action;
            }
            return std::nullopt;
        });

    RpcStatus status = RpcStatus::Timeout;
    int mhz = 0;
    control.setFrequency(coreId, MHz(2100),
                         [&](RpcStatus s, int m) {
                             status = s;
                             mhz = m;
                         });
    sim.run();
    EXPECT_EQ(status, RpcStatus::Ok);
    EXPECT_EQ(mhz, 2100);
    EXPECT_EQ(chip.core(coreId).frequency(), MHz(2100));
    EXPECT_EQ(control.retries(), 2u);
    EXPECT_EQ(control.failures(), 0u);
}

TEST_F(AgentTest, ConnectFailsForUnknownAgent)
{
    RemoteChipControl other(&sim, &bus, "cc2", SimTime::sec(1));
    EXPECT_FALSE(other.connect("node-missing", bus));
}

TEST_F(AgentTest, UnconnectedControlPanics)
{
    RemoteChipControl other(&sim, &bus, "cc3", SimTime::sec(1));
    EXPECT_DEATH(other.setFrequency(0, MHz(1200),
                                    [](RpcStatus, int) {}),
                 "connect");
}

} // namespace
} // namespace pc
