/** @file Tests for the wire format and the query-stats codec. */

#include <gtest/gtest.h>

#include "app/stats_codec.h"
#include "common/rng.h"
#include "core/command_center.h"
#include "exp/runner.h"
#include "rpc/wire.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

TEST(Wire, VarintRoundTrip)
{
    WireWriter w;
    const std::vector<std::uint64_t> values = {
        0, 1, 127, 128, 300, 16383, 16384,
        0xffffffffull, 0xffffffffffffffffull};
    for (auto v : values)
        w.putVarint(v);
    WireReader r(w.bytes());
    for (auto v : values) {
        std::uint64_t got = 0;
        ASSERT_TRUE(r.getVarint(&got));
        EXPECT_EQ(got, v);
    }
    EXPECT_TRUE(r.exhausted());
}

TEST(Wire, VarintCompactness)
{
    WireWriter w;
    w.putVarint(5);
    EXPECT_EQ(w.bytes().size(), 1u);
    w.putVarint(300);
    EXPECT_EQ(w.bytes().size(), 3u); // 1 + 2
}

TEST(Wire, SignedZigZagRoundTrip)
{
    WireWriter w;
    const std::vector<std::int64_t> values = {
        0, -1, 1, -2, 63, -64, 1000000, -1000000,
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()};
    for (auto v : values)
        w.putSigned(v);
    WireReader r(w.bytes());
    for (auto v : values) {
        std::int64_t got = 0;
        ASSERT_TRUE(r.getSigned(&got));
        EXPECT_EQ(got, v);
    }
}

TEST(Wire, SmallNegativesAreCompact)
{
    WireWriter w;
    w.putSigned(-1);
    EXPECT_EQ(w.bytes().size(), 1u);
}

TEST(Wire, DoubleRoundTrip)
{
    WireWriter w;
    const std::vector<double> values = {0.0, -0.0, 1.5, -3.14159,
                                        1e300, 5e-324};
    for (auto v : values)
        w.putDouble(v);
    WireReader r(w.bytes());
    for (auto v : values) {
        double got = 0;
        ASSERT_TRUE(r.getDouble(&got));
        EXPECT_EQ(got, v);
    }
}

TEST(Wire, StringRoundTrip)
{
    WireWriter w;
    w.putString("hello");
    w.putString("");
    w.putString(std::string("\x00\xff", 2));
    WireReader r(w.bytes());
    std::string s;
    ASSERT_TRUE(r.getString(&s));
    EXPECT_EQ(s, "hello");
    ASSERT_TRUE(r.getString(&s));
    EXPECT_EQ(s, "");
    ASSERT_TRUE(r.getString(&s));
    EXPECT_EQ(s.size(), 2u);
}

TEST(Wire, TruncatedInputFailsSafely)
{
    WireWriter w;
    w.putDouble(1.0);
    auto bytes = w.take();
    bytes.pop_back();
    WireReader r(bytes);
    double d = 0;
    EXPECT_FALSE(r.getDouble(&d));
    EXPECT_FALSE(r.ok());
}

TEST(Wire, DanglingVarintContinuationFails)
{
    const std::vector<std::uint8_t> bytes = {0x80, 0x80};
    WireReader r(bytes);
    std::uint64_t v = 0;
    EXPECT_FALSE(r.getVarint(&v));
    EXPECT_FALSE(r.ok());
}

TEST(Wire, OversizedStringLengthFails)
{
    WireWriter w;
    w.putVarint(1000); // claims 1000 bytes, provides none
    WireReader r(w.bytes());
    std::string s;
    EXPECT_FALSE(r.getString(&s));
}

// ---------------------------------------------------------- stats codec

QueryStatsRecord
sampleRecord()
{
    QueryStatsRecord record;
    record.queryId = 77;
    record.arrival = SimTime::msec(100);
    record.completed = SimTime::msec(4250);
    for (int i = 0; i < 3; ++i) {
        HopRecord hop;
        hop.instanceId = 10 + i;
        hop.stageIndex = i;
        hop.enqueued = SimTime::msec(100 + 1000 * i);
        hop.started = SimTime::msec(300 + 1000 * i);
        hop.finished = SimTime::msec(900 + 1000 * i);
        hop.servedMhz = 2400 + 100 * i;
        hop.shardIndex = i == 1 ? 0 : -1;
        hop.shardCount = i == 1 ? 4 : 0;
        hop.boosted = i == 2;
        hop.wasted = i == 0;
        record.hops.push_back(hop);
    }
    return record;
}

TEST(StatsCodec, RoundTripExact)
{
    const auto record = sampleRecord();
    const auto decoded = decodeStats(encodeStats(record));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->queryId, record.queryId);
    EXPECT_EQ(decoded->arrival, record.arrival);
    EXPECT_EQ(decoded->completed, record.completed);
    EXPECT_EQ(decoded->endToEnd(), record.endToEnd());
    ASSERT_EQ(decoded->hops.size(), record.hops.size());
    for (std::size_t i = 0; i < record.hops.size(); ++i) {
        EXPECT_EQ(decoded->hops[i].instanceId,
                  record.hops[i].instanceId);
        EXPECT_EQ(decoded->hops[i].stageIndex,
                  record.hops[i].stageIndex);
        EXPECT_EQ(decoded->hops[i].queuing(),
                  record.hops[i].queuing());
        EXPECT_EQ(decoded->hops[i].serving(),
                  record.hops[i].serving());
        EXPECT_EQ(decoded->hops[i].servedMhz,
                  record.hops[i].servedMhz);
        EXPECT_EQ(decoded->hops[i].shardIndex,
                  record.hops[i].shardIndex);
        EXPECT_EQ(decoded->hops[i].shardCount,
                  record.hops[i].shardCount);
        EXPECT_EQ(decoded->hops[i].boosted, record.hops[i].boosted);
        EXPECT_EQ(decoded->hops[i].wasted, record.hops[i].wasted);
    }
}

TEST(StatsCodec, UnknownHopFlagsRejected)
{
    // The flags varint carries exactly two bits today (wasted,
    // boosted); anything else is a corrupt or future-format buffer.
    auto record = sampleRecord();
    record.hops.resize(1);
    WireWriter w;
    w.putSigned(record.queryId);
    w.putSigned(record.arrival.toUsec());
    w.putSigned(record.completed.toUsec());
    w.putVarint(1);
    const HopRecord &hop = record.hops[0];
    w.putSigned(hop.instanceId);
    w.putSigned(hop.stageIndex);
    w.putSigned(hop.enqueued.toUsec());
    w.putSigned(hop.started.toUsec());
    w.putSigned(hop.finished.toUsec());
    w.putSigned(hop.servedMhz);
    w.putVarint(4u); // undefined flag bit
    w.putSigned(hop.shardIndex);
    w.putSigned(hop.shardCount);
    EXPECT_FALSE(decodeStats(w.bytes()).has_value());
}

TEST(StatsCodec, EmptyHopsAllowed)
{
    QueryStatsRecord record;
    record.queryId = 1;
    const auto decoded = decodeStats(encodeStats(record));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->hops.empty());
}

TEST(StatsCodec, TruncationRejected)
{
    auto bytes = encodeStats(sampleRecord());
    for (std::size_t cut = 1; cut < bytes.size(); cut += 7) {
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(cut));
        EXPECT_FALSE(decodeStats(truncated).has_value())
            << "cut at " << cut;
    }
}

TEST(StatsCodec, TrailingGarbageRejected)
{
    auto bytes = encodeStats(sampleRecord());
    bytes.push_back(0x42);
    EXPECT_FALSE(decodeStats(bytes).has_value());
}

TEST(StatsCodec, AbsurdHopCountRejected)
{
    WireWriter w;
    w.putSigned(1);
    w.putSigned(0);
    w.putSigned(0);
    w.putVarint(1u << 30); // claims a billion hops
    EXPECT_FALSE(decodeStats(w.bytes()).has_value());
}

TEST(StatsCodec, RandomizedRoundTrip)
{
    Rng rng(123);
    for (int trial = 0; trial < 200; ++trial) {
        QueryStatsRecord record;
        record.queryId = rng.uniformInt(-1000000, 1000000);
        record.arrival = SimTime::usec(rng.uniformInt(0, 1000000000));
        record.completed =
            record.arrival + SimTime::usec(rng.uniformInt(0, 10000000));
        const int hops = static_cast<int>(rng.uniformInt(0, 8));
        for (int i = 0; i < hops; ++i) {
            HopRecord hop;
            hop.instanceId = rng.uniformInt(0, 1 << 20);
            hop.stageIndex = static_cast<int>(rng.uniformInt(0, 10));
            hop.enqueued = SimTime::usec(rng.uniformInt(0, 1 << 30));
            hop.started =
                hop.enqueued + SimTime::usec(rng.uniformInt(0, 1 << 20));
            hop.finished =
                hop.started + SimTime::usec(rng.uniformInt(0, 1 << 20));
            record.hops.push_back(hop);
        }
        const auto decoded = decodeStats(encodeStats(record));
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->hops.size(), record.hops.size());
        EXPECT_EQ(decoded->queryId, record.queryId);
        EXPECT_EQ(decoded->endToEnd(), record.endToEnd());
    }
}

// ------------------------------------------------- end-to-end wire mode

TEST(WireMode, MalformedReportsAreCountedAndDropped)
{
    // A hostile/corrupt stats buffer must not crash or poison the
    // command center — it is counted and ignored.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 8);
    MessageBus bus(&sim);
    const WorkloadModel sirius = WorkloadModel::sirius();
    MultiStageApp app(&sim, &chip, &bus, "sirius",
                      sirius.layout(1, model.ladder().midLevel()));
    const SpeedupBook book =
        OfflineProfiler(20).profileWorkload(sirius, model, 1);
    PowerBudget budget(Watts(13.56), &model);
    CommandCenter center(&sim, &bus, &chip, &app, &budget, &book,
                         ControlConfig{},
                         std::make_unique<StageAgnosticPolicy>());

    bus.send(center.endpoint(),
             std::make_shared<WireStatsMessage>(
                 std::vector<std::uint8_t>{0xff, 0xff, 0xff}));
    // A valid one still gets through afterwards.
    QueryStatsRecord record;
    record.queryId = 1;
    record.completed = SimTime::sec(2);
    bus.send(center.endpoint(),
             std::make_shared<WireStatsMessage>(encodeStats(record)));
    sim.run();
    EXPECT_EQ(center.malformedReports(), 1u);
    EXPECT_EQ(center.queriesObserved(), 1u);
}

TEST(WireMode, RunMatchesObjectModeExactly)
{
    // The controller must behave identically whether reports arrive as
    // in-process objects or as decoded wire bytes.
    Scenario object = Scenario::mitigation(WorkloadModel::sirius(),
                                           LoadLevel::High,
                                           PolicyKind::PowerChief, 7);
    object.duration = SimTime::sec(200);
    Scenario wire = object;
    wire.wireReports = true;

    const ExperimentRunner runner;
    const auto a = runner.run(object);
    const auto b = runner.run(wire);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.avgLatencySec, b.avgLatencySec);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.avgPowerWatts, b.avgPowerWatts);
}

} // namespace
} // namespace pc
