/** @file Unit tests for Stage: instance pool, withdraw, dispatch. */

#include <gtest/gtest.h>

#include "app/stage.h"

namespace pc {
namespace {

QueryPtr
makeQuery(std::int64_t id, double cpuRef = 1.2, double mem = 0.3)
{
    return std::make_shared<Query>(
        id, SimTime::zero(), std::vector<WorkDemand>{{cpuRef, mem}});
}

class StageTest : public testing::Test
{
  protected:
    StageTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 4),
          stage(0, "QA", &sim, &chip)
    {
        stage.setCompletionCallback(
            [this](QueryPtr q) { done.push_back(std::move(q)); });
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    Stage stage;
    std::vector<QueryPtr> done;
};

TEST_F(StageTest, LaunchNamesSequentially)
{
    auto *a = stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->name(), "QA_1");
    EXPECT_EQ(b->name(), "QA_2");
    EXPECT_NE(a->id(), b->id());
    EXPECT_EQ(stage.numLiveInstances(), 2u);
    EXPECT_EQ(chip.numAllocated(), 2);
}

TEST_F(StageTest, LaunchFailsWhenChipFull)
{
    for (int i = 0; i < 4; ++i)
        EXPECT_NE(stage.launchInstance(0), nullptr);
    EXPECT_EQ(stage.launchInstance(0), nullptr);
}

TEST_F(StageTest, LaunchAtRequestedLevel)
{
    auto *a = stage.launchInstance(9);
    EXPECT_EQ(a->level(), 9);
    EXPECT_EQ(a->frequency(), MHz(2100));
}

TEST_F(StageTest, SubmitDispatchesAndCompletes)
{
    stage.launchInstance(0);
    stage.submit(makeQuery(1));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->id(), 1);
}

TEST_F(StageTest, SubmitBalancesAcrossInstances)
{
    auto *a = stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    stage.submit(makeQuery(1));
    stage.submit(makeQuery(2));
    EXPECT_EQ(a->queueLength(), 1u);
    EXPECT_EQ(b->queueLength(), 1u);
    EXPECT_EQ(stage.totalQueueLength(), 2u);
}

TEST_F(StageTest, FindInstanceById)
{
    auto *a = stage.launchInstance(0);
    EXPECT_EQ(stage.findInstance(a->id()), a);
    EXPECT_EQ(stage.findInstance(99999), nullptr);
}

TEST_F(StageTest, WithdrawLastInstanceRefused)
{
    auto *a = stage.launchInstance(0);
    EXPECT_FALSE(stage.withdrawInstance(a->id()));
    EXPECT_EQ(stage.numLiveInstances(), 1u);
}

TEST_F(StageTest, WithdrawUnknownRefused)
{
    stage.launchInstance(0);
    stage.launchInstance(0);
    EXPECT_FALSE(stage.withdrawInstance(424242));
}

TEST_F(StageTest, WithdrawIdleInstanceReleasesCore)
{
    stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    EXPECT_TRUE(stage.withdrawInstance(b->id()));
    sim.run(); // zero-delay reap
    EXPECT_EQ(stage.numLiveInstances(), 1u);
    EXPECT_EQ(stage.allInstances().size(), 1u);
    EXPECT_EQ(chip.numAllocated(), 1);
}

TEST_F(StageTest, WithdrawRedirectsWaitingQueries)
{
    auto *a = stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    // Load b with three queries (1 in service + 2 waiting).
    b->enqueue(makeQuery(1));
    b->enqueue(makeQuery(2));
    b->enqueue(makeQuery(3));
    EXPECT_TRUE(stage.withdrawInstance(b->id(), a));
    // The two waiting queries moved to a; b finishes its in-flight one.
    EXPECT_EQ(a->queueLength(), 2u);
    EXPECT_TRUE(b->draining());
    sim.run();
    EXPECT_EQ(done.size(), 3u);
    EXPECT_EQ(stage.numLiveInstances(), 1u);
    EXPECT_EQ(chip.numAllocated(), 1);
}

TEST_F(StageTest, WithdrawBusyInstanceReapsAfterDrain)
{
    stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    b->enqueue(makeQuery(1)); // busy
    EXPECT_TRUE(stage.withdrawInstance(b->id()));
    EXPECT_EQ(stage.allInstances().size(), 2u); // not reaped yet
    sim.run();
    EXPECT_EQ(stage.allInstances().size(), 1u);
}

TEST_F(StageTest, WithdrawDefaultsToLeastLoadedTarget)
{
    auto *a = stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    auto *c = stage.launchInstance(0);
    for (int i = 0; i < 3; ++i)
        a->enqueue(makeQuery(100 + i));
    // b gets withdrawn; its queries should go to c (empty), not a.
    b->enqueue(makeQuery(10));
    b->enqueue(makeQuery(11));
    EXPECT_TRUE(stage.withdrawInstance(b->id(), nullptr));
    EXPECT_EQ(c->queueLength(), 1u);

    // In-service query of b is NOT redirected.
    EXPECT_TRUE(b->busy());
}

TEST_F(StageTest, DoubleWithdrawRefused)
{
    stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    b->enqueue(makeQuery(1));
    EXPECT_TRUE(stage.withdrawInstance(b->id()));
    EXPECT_FALSE(stage.withdrawInstance(b->id()));
}

TEST_F(StageTest, DispatcherSkipsDrainingInstance)
{
    auto *a = stage.launchInstance(0);
    auto *b = stage.launchInstance(0);
    b->enqueue(makeQuery(1));
    ASSERT_TRUE(stage.withdrawInstance(b->id()));
    stage.submit(makeQuery(2));
    EXPECT_EQ(a->queueLength(), 1u);
    EXPECT_EQ(b->queueLength(), 1u); // unchanged
}

TEST_F(StageTest, InstanceIdsGloballyUnique)
{
    Stage other(1, "OTHER", &sim, &chip);
    auto *a = stage.launchInstance(0);
    auto *b = other.launchInstance(0);
    EXPECT_NE(a->id(), b->id());
}

} // namespace
} // namespace pc
