/** @file Unit tests for the frequency ladder and power model. */

#include <gtest/gtest.h>

#include "power/power_model.h"

namespace pc {
namespace {

TEST(FrequencyLadder, HaswellShape)
{
    const auto ladder = FrequencyLadder::haswell();
    EXPECT_EQ(ladder.numLevels(), 13);
    EXPECT_EQ(ladder.freqAt(0), MHz(1200));
    EXPECT_EQ(ladder.freqAt(12), MHz(2400));
    EXPECT_EQ(ladder.freqAt(ladder.midLevel()), MHz(1800));
}

TEST(FrequencyLadder, LevelOfRoundTrip)
{
    const auto ladder = FrequencyLadder::haswell();
    for (int lvl = 0; lvl < ladder.numLevels(); ++lvl)
        EXPECT_EQ(ladder.levelOf(ladder.freqAt(lvl)), lvl);
}

TEST(FrequencyLadder, LevelAtOrBelow)
{
    const auto ladder = FrequencyLadder::haswell();
    EXPECT_EQ(ladder.levelAtOrBelow(MHz(1850)), 6);
    EXPECT_EQ(ladder.levelAtOrBelow(MHz(1800)), 6);
    EXPECT_EQ(ladder.levelAtOrBelow(MHz(1000)), 0);
    EXPECT_EQ(ladder.levelAtOrBelow(MHz(9999)), 12);
}

TEST(FrequencyLadder, ClampLevel)
{
    const auto ladder = FrequencyLadder::haswell();
    EXPECT_EQ(ladder.clampLevel(-3), 0);
    EXPECT_EQ(ladder.clampLevel(99), 12);
    EXPECT_EQ(ladder.clampLevel(5), 5);
}

TEST(FrequencyLadderDeath, OffLadderFrequencyPanics)
{
    const auto ladder = FrequencyLadder::haswell();
    EXPECT_DEATH((void)ladder.levelOf(MHz(1850)), "not on the ladder");
}

TEST(FrequencyLadderDeath, OutOfRangeLevelPanics)
{
    const auto ladder = FrequencyLadder::haswell();
    EXPECT_DEATH((void)ladder.freqAt(13), "out of range");
    EXPECT_DEATH((void)ladder.freqAt(-1), "out of range");
}

TEST(FrequencyLadderDeath, InvalidConstructionIsFatal)
{
    EXPECT_EXIT(FrequencyLadder(MHz(2400), MHz(1200), MHz(100)),
                testing::ExitedWithCode(1), "invalid");
    EXPECT_EXIT(FrequencyLadder(MHz(1200), MHz(2400), MHz(70)),
                testing::ExitedWithCode(1), "multiple");
}

TEST(PowerModel, Table2Calibration)
{
    // One core at 1.8 GHz must draw 13.56/3 W so the paper's budget
    // covers exactly one mid-frequency instance per Sirius stage.
    const auto model = PowerModel::haswell();
    const int mid = model.ladder().midLevel();
    EXPECT_NEAR(model.activeWatts(mid).value(), 4.52, 0.001);
}

TEST(PowerModel, ActivePowerStrictlyIncreasing)
{
    const auto model = PowerModel::haswell();
    for (int lvl = 1; lvl < model.ladder().numLevels(); ++lvl)
        EXPECT_GT(model.activeWatts(lvl).value(),
                  model.activeWatts(lvl - 1).value());
}

TEST(PowerModel, IdleBelowActiveEverywhere)
{
    const auto model = PowerModel::haswell();
    for (int lvl = 0; lvl < model.ladder().numLevels(); ++lvl) {
        EXPECT_LT(model.idleWatts(lvl).value(),
                  model.activeWatts(lvl).value());
        EXPECT_GT(model.idleWatts(lvl).value(), 0.0);
    }
}

TEST(PowerModel, IdleIsMostlyStatic)
{
    // Frequency de-boost on an idle core saves much less than on a busy
    // one — the §8.4 mechanism that favours instance withdraw.
    const auto model = PowerModel::haswell();
    const double idleSpread = model.idleWatts(12).value() -
        model.idleWatts(0).value();
    const double activeSpread = model.activeWatts(12).value() -
        model.activeWatts(0).value();
    EXPECT_LT(idleSpread, 0.2 * activeSpread);
}

TEST(PowerModel, DeltaWattsAntisymmetric)
{
    const auto model = PowerModel::haswell();
    EXPECT_DOUBLE_EQ(model.deltaWatts(3, 9).value(),
                     -model.deltaWatts(9, 3).value());
    EXPECT_DOUBLE_EQ(model.deltaWatts(5, 5).value(), 0.0);
}

TEST(PowerModel, ActiveWattsAtFrequency)
{
    const auto model = PowerModel::haswell();
    EXPECT_DOUBLE_EQ(model.activeWattsAt(MHz(1800)).value(),
                     model.activeWatts(6).value());
}

TEST(PowerModel, MaxLevelWithinBudget)
{
    const auto model = PowerModel::haswell();
    // Exactly affordable at the level's own power.
    for (int lvl = 0; lvl < model.ladder().numLevels(); ++lvl)
        EXPECT_EQ(model.maxLevelWithin(model.activeWatts(lvl)), lvl);
    EXPECT_EQ(model.maxLevelWithin(Watts(0.01)), -1);
    EXPECT_EQ(model.maxLevelWithin(Watts(1000.0)), 12);
}

TEST(PowerModel, VoltageLinearInFrequency)
{
    const auto model = PowerModel::haswell();
    EXPECT_DOUBLE_EQ(model.voltsAt(0), 0.60);
    EXPECT_DOUBLE_EQ(model.voltsAt(12), 1.10);
    EXPECT_NEAR(model.voltsAt(6), 0.85, 1e-12);
}

TEST(PowerModel, ConvexityOfPowerCurve)
{
    // V^2*f makes successive level steps cost more and more watts —
    // the property that makes low-frequency clones power-efficient.
    const auto model = PowerModel::haswell();
    for (int lvl = 2; lvl < model.ladder().numLevels(); ++lvl) {
        const double step1 = model.deltaWatts(lvl - 2, lvl - 1).value();
        const double step2 = model.deltaWatts(lvl - 1, lvl).value();
        EXPECT_GT(step2, step1);
    }
}

TEST(PowerModel, CloneCheaperThanTopLevels)
{
    // A second core at 1.2 GHz costs less than pushing one core from
    // 1.8 to 2.4 GHz — instance boosting is power-efficient.
    const auto model = PowerModel::haswell();
    EXPECT_LT(model.activeWatts(0).value(),
              model.deltaWatts(6, 12).value());
}

TEST(PowerModelDeath, BadVoltageRangeIsFatal)
{
    PowerModel::Params params;
    params.minVolts = 1.2;
    params.maxVolts = 1.0;
    EXPECT_EXIT(PowerModel(FrequencyLadder::haswell(), params),
                testing::ExitedWithCode(1), "voltage");
}

TEST(PowerModelDeath, LevelOutsideLadderPanics)
{
    const auto model = PowerModel::haswell();
    EXPECT_DEATH((void)model.activeWatts(13), "outside ladder");
}

class PowerModelLevels : public testing::TestWithParam<int>
{
};

TEST_P(PowerModelLevels, DeltaMatchesTableDifference)
{
    const auto model = PowerModel::haswell();
    const int lvl = GetParam();
    EXPECT_DOUBLE_EQ(model.deltaWatts(0, lvl).value(),
                     model.activeWatts(lvl).value() -
                         model.activeWatts(0).value());
}

TEST_P(PowerModelLevels, PowerWithinPhysicalBounds)
{
    const auto model = PowerModel::haswell();
    const int lvl = GetParam();
    EXPECT_GT(model.activeWatts(lvl).value(), 0.2);
    EXPECT_LT(model.activeWatts(lvl).value(), 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, PowerModelLevels,
                         testing::Range(0, 13));

} // namespace
} // namespace pc
