/** @file Unit tests for bottleneck metrics and the identifier. */

#include <gtest/gtest.h>

#include "core/bottleneck.h"

namespace pc {
namespace {

InstanceSnapshot
snap(std::size_t queue, double q, double s, double tq = 0, double ts = 0)
{
    InstanceSnapshot out;
    out.queueLength = queue;
    out.avgQueuingSec = q;
    out.avgServingSec = s;
    out.p99QueuingSec = tq;
    out.p99ServingSec = ts;
    return out;
}

TEST(Metrics, PowerChiefEquationOne)
{
    PowerChiefMetric m;
    // L*q + s.
    EXPECT_DOUBLE_EQ(m.score(snap(4, 0.5, 1.0)), 3.0);
    EXPECT_DOUBLE_EQ(m.score(snap(0, 0.5, 1.0)), 1.0);
    EXPECT_STREQ(m.name(), "powerchief");
}

TEST(Metrics, QueueLengthDominatesUnderBurst)
{
    // The §4.2 motivating case: a historically fast instance with a
    // deep realtime queue must outrank a slow-but-idle one.
    PowerChiefMetric m;
    const auto busy = snap(20, 0.2, 0.3);  // fast but swamped
    const auto idle = snap(1, 0.5, 2.0);   // slow but idle
    EXPECT_GT(m.score(busy), m.score(idle));

    AvgProcessingMetric historic;
    EXPECT_LT(historic.score(busy), historic.score(idle));
}

TEST(Metrics, TableOneAlternatives)
{
    const auto s = snap(3, 0.4, 1.1, 0.9, 2.5);
    EXPECT_DOUBLE_EQ(AvgQueuingMetric().score(s), 0.4);
    EXPECT_DOUBLE_EQ(AvgServingMetric().score(s), 1.1);
    EXPECT_DOUBLE_EQ(AvgProcessingMetric().score(s), 1.5);
    EXPECT_DOUBLE_EQ(TailProcessingMetric().score(s), 3.4);
}

class IdentifierTest : public testing::Test
{
  protected:
    IdentifierTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim)
    {
        std::vector<StageSpec> specs = {
            {"A", 1, 0, DispatchPolicy::JoinShortestQueue},
            {"B", 2, 0, DispatchPolicy::JoinShortestQueue},
        };
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
    }

    /** Report one query that spent (q, s) seconds at instance @p inst. */
    void
    report(const ServiceInstance *inst, double q, double s, SimTime at)
    {
        Query query(nextId++, SimTime::zero(),
                    {WorkDemand{}, WorkDemand{}});
        HopRecord hop;
        hop.instanceId = inst->id();
        hop.stageIndex = inst->stageIndex();
        hop.enqueued = SimTime::zero();
        hop.started = SimTime::sec(q);
        hop.finished = SimTime::sec(q + s);
        query.addHop(hop);
        identifier.observe(at, query);
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    std::unique_ptr<MultiStageApp> app;
    BottleneckIdentifier identifier{SimTime::sec(50)};
    std::int64_t nextId = 1;
};

TEST_F(IdentifierTest, RanksAscendingByMetric)
{
    const auto *a = app->stage(0).instances()[0];
    const auto *b0 = app->stage(1).instances()[0];
    const auto *b1 = app->stage(1).instances()[1];
    report(a, 0.1, 0.5, SimTime::sec(1));
    report(b0, 0.1, 2.0, SimTime::sec(1));
    report(b1, 0.1, 1.0, SimTime::sec(1));

    auto ranked = identifier.rank(SimTime::sec(1), *app);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_LE(ranked[0].metric, ranked[1].metric);
    EXPECT_LE(ranked[1].metric, ranked[2].metric);
    EXPECT_EQ(ranked.back().instanceId, b0->id());
    EXPECT_EQ(ranked.front().instanceId, a->id());
}

TEST_F(IdentifierTest, BottleneckIsBack)
{
    const auto *a = app->stage(0).instances()[0];
    report(a, 0.0, 3.0, SimTime::sec(1));
    const auto bn = identifier.bottleneck(SimTime::sec(1), *app);
    EXPECT_EQ(bn.instanceId, a->id());
    EXPECT_DOUBLE_EQ(bn.avgServingSec, 3.0);
}

TEST_F(IdentifierTest, WindowMeansAreAveraged)
{
    const auto *a = app->stage(0).instances()[0];
    report(a, 0.2, 1.0, SimTime::sec(1));
    report(a, 0.4, 2.0, SimTime::sec(2));
    auto ranked = identifier.rank(SimTime::sec(2), *app);
    const auto &snapA = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == a->id(); });
    EXPECT_NEAR(snapA.avgQueuingSec, 0.3, 1e-9);
    EXPECT_NEAR(snapA.avgServingSec, 1.5, 1e-9);
}

TEST_F(IdentifierTest, OldSamplesEvicted)
{
    const auto *a = app->stage(0).instances()[0];
    report(a, 0.0, 10.0, SimTime::sec(1));
    report(a, 0.0, 1.0, SimTime::sec(60));
    // At t=60 the window spans [10, 60]: only the second sample remains.
    auto ranked = identifier.rank(SimTime::sec(60), *app);
    const auto &snapA = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == a->id(); });
    EXPECT_DOUBLE_EQ(snapA.avgServingSec, 1.0);
}

TEST_F(IdentifierTest, RealtimeQueueLengthInSnapshot)
{
    auto *a = app->stage(0).instances()[0];
    const_cast<ServiceInstance *>(a)->enqueue(std::make_shared<Query>(
        99, SimTime::zero(),
        std::vector<WorkDemand>{{10.0, 0.0}, {}}));
    report(a, 0.5, 0.5, SimTime::sec(1));
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    const auto &snapA = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == a->id(); });
    EXPECT_EQ(snapA.queueLength, 1u);
    // Metric = 1 * 0.5 + 0.5.
    EXPECT_DOUBLE_EQ(snapA.metric, 1.0);
}

TEST_F(IdentifierTest, FreshInstanceSeededFromStageAggregate)
{
    const auto *b0 = app->stage(1).instances()[0];
    report(b0, 0.3, 1.5, SimTime::sec(1));
    // b1 never served a query: it inherits stage-level averages.
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    const auto *b1 = app->stage(1).instances()[1];
    const auto &snapB1 = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == b1->id(); });
    EXPECT_DOUBLE_EQ(snapB1.avgServingSec, 1.5);
    EXPECT_DOUBLE_EQ(snapB1.avgQueuingSec, 0.3);
}

TEST_F(IdentifierTest, StaleWindowExcludesSilentInstances)
{
    identifier.setStaleWindow(SimTime::sec(30));
    const auto *a = app->stage(0).instances()[0];
    const auto *b0 = app->stage(1).instances()[0];
    const auto *b1 = app->stage(1).instances()[1];
    report(a, 0.1, 0.5, SimTime::sec(1));  // reports, then goes silent
    report(b0, 0.1, 2.0, SimTime::sec(1)); // likewise
    report(b1, 0.1, 1.0, SimTime::sec(40));

    // At t=40 only b1 reported within the 30 s window: a and b0 are
    // excluded instead of being scored on frozen averages.
    auto ranked = identifier.rank(SimTime::sec(40), *app);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0].instanceId, b1->id());
    ASSERT_EQ(identifier.lastStaleSkips().size(), 2u);
    for (const auto &skip : identifier.lastStaleSkips())
        EXPECT_NEAR(skip.ageSec, 39.0, 1e-9);
    EXPECT_EQ(identifier.staleSkipsTotal(), 2u);

    // Once everyone reports again, nobody is skipped.
    report(a, 0.1, 0.5, SimTime::sec(45));
    report(b0, 0.1, 2.0, SimTime::sec(45));
    report(b1, 0.1, 1.0, SimTime::sec(45));
    ranked = identifier.rank(SimTime::sec(45), *app);
    EXPECT_EQ(ranked.size(), 3u);
    EXPECT_TRUE(identifier.lastStaleSkips().empty());
    EXPECT_EQ(identifier.staleSkipsTotal(), 2u);
}

TEST_F(IdentifierTest, ZeroStaleWindowDisablesGuard)
{
    const auto *a = app->stage(0).instances()[0];
    report(a, 0.1, 0.5, SimTime::sec(1));
    // Default window is zero: even a long-silent instance still ranks.
    auto ranked = identifier.rank(SimTime::sec(200), *app);
    EXPECT_EQ(ranked.size(), 3u);
    EXPECT_TRUE(identifier.lastStaleSkips().empty());
    EXPECT_EQ(identifier.staleSkipsTotal(), 0u);
}

TEST_F(IdentifierTest, NeverReportingInstanceIsNotStale)
{
    identifier.setStaleWindow(SimTime::sec(30));
    const auto *b0 = app->stage(1).instances()[0];
    // b1 never reports at all: it is a fresh clone seeded from the
    // stage aggregate, not a stale instance.
    report(b0, 0.3, 1.5, SimTime::sec(100));
    auto ranked = identifier.rank(SimTime::sec(100), *app);
    EXPECT_EQ(ranked.size(), 3u);
    EXPECT_TRUE(identifier.lastStaleSkips().empty());
}

TEST_F(IdentifierTest, NoHistoryAnywhereScoresZero)
{
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    for (const auto &s : ranked)
        EXPECT_DOUBLE_EQ(s.metric, 0.0);
}

TEST_F(IdentifierTest, SnapshotCarriesIdentity)
{
    const auto *a = app->stage(0).instances()[0];
    report(a, 0.1, 0.1, SimTime::sec(1));
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    const auto &snapA = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == a->id(); });
    EXPECT_EQ(snapA.name, a->name());
    EXPECT_EQ(snapA.stageIndex, 0);
    EXPECT_EQ(snapA.coreId, a->coreId());
    EXPECT_EQ(snapA.level, a->level());
}

TEST_F(IdentifierTest, P99FieldsPopulated)
{
    const auto *a = app->stage(0).instances()[0];
    for (int i = 1; i <= 100; ++i)
        report(a, 0.0, static_cast<double>(i) / 100.0, SimTime::sec(1));
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    const auto &snapA = *std::find_if(
        ranked.begin(), ranked.end(),
        [&](const auto &s) { return s.instanceId == a->id(); });
    EXPECT_NEAR(snapA.p99ServingSec, 0.99, 0.02);
}

TEST_F(IdentifierTest, GarbageCollectDropsDeadInstances)
{
    auto *b1 = app->stage(1).instances()[1];
    report(b1, 0.1, 0.1, SimTime::sec(1));
    const auto deadId = b1->id();
    ASSERT_TRUE(app->stage(1).withdrawInstance(deadId));
    sim.run(); // reap
    identifier.garbageCollect(*app);
    // Ranking only includes live instances.
    auto ranked = identifier.rank(SimTime::sec(1), *app);
    for (const auto &s : ranked)
        EXPECT_NE(s.instanceId, deadId);
}

TEST_F(IdentifierTest, CustomMetricUsed)
{
    BottleneckIdentifier custom(
        SimTime::sec(50), std::make_unique<AvgServingMetric>());
    EXPECT_STREQ(custom.metric().name(), "avg-serving");
}

TEST(IdentifierDeath, EmptyAppBottleneckPanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    MessageBus bus(&sim);
    std::vector<StageSpec> specs = {
        {"A", 1, 0, DispatchPolicy::JoinShortestQueue}};
    MultiStageApp app(&sim, &chip, &bus, "app", specs);
    BottleneckIdentifier identifier{SimTime::sec(50)};
    // Withdraw refuses to empty the stage, so fabricate an app with no
    // instances via draining: not possible through the API — instead
    // verify the panic contract with an app that has instances removed
    // is unreachable; check window validation instead.
    EXPECT_EXIT(BottleneckIdentifier(SimTime::zero()),
                testing::ExitedWithCode(1), "positive");
    (void)app;
    (void)identifier;
}

} // namespace
} // namespace pc
