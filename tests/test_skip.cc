/** @file Tests for stage skipping (mixed Sirius inputs, Fig. 8). */

#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "workloads/loadgen.h"

namespace pc {
namespace {

class SkipTest : public testing::Test
{
  protected:
    SkipTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim)
    {
        std::vector<StageSpec> specs = {
            {"A", 1, 0, DispatchPolicy::JoinShortestQueue},
            {"B", 1, 0, DispatchPolicy::JoinShortestQueue},
            {"C", 1, 0, DispatchPolicy::JoinShortestQueue}};
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
        app->setCompletionSink(
            [this](QueryPtr q) { done.push_back(std::move(q)); });
    }

    QueryPtr
    makeQuery(std::int64_t id, std::vector<bool> skips)
    {
        std::vector<WorkDemand> demands;
        for (bool skip : skips) {
            WorkDemand d;
            d.memSec = 0.5;
            d.skip = skip;
            demands.push_back(d);
        }
        return std::make_shared<Query>(id, sim.now(), demands);
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    std::unique_ptr<MultiStageApp> app;
    std::vector<QueryPtr> done;
};

TEST_F(SkipTest, MiddleStageSkipped)
{
    app->submit(makeQuery(1, {false, true, false}));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    ASSERT_EQ(done[0]->hops().size(), 2u);
    EXPECT_EQ(done[0]->hops()[0].stageIndex, 0);
    EXPECT_EQ(done[0]->hops()[1].stageIndex, 2);
    EXPECT_NEAR(done[0]->endToEnd().toSec(), 1.0, 1e-6);
}

TEST_F(SkipTest, FirstStageSkipped)
{
    app->submit(makeQuery(1, {true, false, false}));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().front().stageIndex, 1);
}

TEST_F(SkipTest, LastStageSkipped)
{
    app->submit(makeQuery(1, {false, false, true}));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().back().stageIndex, 1);
}

TEST_F(SkipTest, ConsecutiveSkips)
{
    app->submit(makeQuery(1, {false, true, true}));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().size(), 1u);
}

TEST_F(SkipTest, AllStagesSkippedCompletesImmediately)
{
    app->submit(makeQuery(1, {true, true, true}));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0]->hops().empty());
    EXPECT_EQ(done[0]->endToEnd(), SimTime::zero());
    EXPECT_EQ(app->completed(), 1u);
}

TEST_F(SkipTest, SkippedStageNeverSeesTheQuery)
{
    app->submit(makeQuery(1, {false, true, false}));
    sim.run();
    EXPECT_EQ(app->stage(1).instances()[0]->queriesServed(), 0u);
}

TEST_F(SkipTest, SkipsReportedToCommandCenter)
{
    std::size_t hops = 99;
    const EndpointId endpoint = bus.registerEndpoint(
        "cc", [&](const MessagePtr &msg) {
            hops = dynamic_cast<const QueryCompletedMessage &>(*msg)
                       .query->hops()
                       .size();
        });
    app->setReportEndpoint(endpoint);
    app->submit(makeQuery(1, {false, true, false}));
    sim.run();
    EXPECT_EQ(hops, 2u);
}

TEST(SiriusMixed, HalfTheQueriesSkipImm)
{
    const auto mixed = WorkloadModel::siriusMixed();
    EXPECT_EQ(mixed.name(), "sirius-mixed");
    Rng rng(31);
    int skipped = 0;
    constexpr int kN = 4000;
    for (int i = 0; i < kN; ++i) {
        const auto demands = mixed.sampleDemands(rng, 1200);
        ASSERT_EQ(demands.size(), 3u);
        EXPECT_FALSE(demands[0].skip); // ASR always runs
        EXPECT_FALSE(demands[2].skip); // QA always runs
        skipped += demands[1].skip ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(skipped) / kN, 0.5, 0.03);
}

TEST(SiriusMixed, EndToEndRunWorks)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 8);
    MessageBus bus(&sim);
    const auto mixed = WorkloadModel::siriusMixed();
    MultiStageApp app(&sim, &chip, &bus, "mixed",
                      mixed.layout(1, model.ladder().midLevel()));
    std::uint64_t withImm = 0;
    std::uint64_t withoutImm = 0;
    app.setCompletionSink([&](const QueryPtr &q) {
        if (q->hops().size() == 3)
            ++withImm;
        else if (q->hops().size() == 2)
            ++withoutImm;
    });
    LoadGenerator gen(&sim, &app, &mixed, LoadProfile::constant(0.3),
                      7, model.ladder().freqAt(0).value());
    gen.start(SimTime::sec(400));
    sim.runUntil(SimTime::sec(420));
    EXPECT_GT(withImm, 20u);
    EXPECT_GT(withoutImm, 20u);
    EXPECT_EQ(app.completed(), withImm + withoutImm);
}

} // namespace
} // namespace pc
