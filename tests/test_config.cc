/** @file Tests for the JSON scenario/workload config loader. */

#include <gtest/gtest.h>

#include "exp/config_loader.h"
#include "exp/runner.h"

namespace pc {
namespace {

constexpr const char *kFullConfig = R"({
  "workload": {
    "name": "my-app",
    "stages": [
      {"name": "FRONT", "mean_sec": 0.1, "cv": 0.3,
       "compute_fraction": 0.9},
      {"name": "RANK", "mean_sec": 0.6, "cv": 0.5,
       "compute_fraction": 0.8, "participation": 0.75}
    ]
  },
  "scenario": {
    "name": "my-run",
    "policy": "powerchief",
    "budget_watts": 10.0,
    "qps": 1.0,
    "duration_sec": 120,
    "warmup_sec": 10,
    "adjust_interval_sec": 15,
    "seed": 7
  }
})";

TEST(ConfigLoader, FullCustomWorkload)
{
    const auto result = scenarioFromJsonText(kFullConfig);
    ASSERT_TRUE(result.ok()) << result.error;
    const Scenario &sc = *result.scenario;
    EXPECT_EQ(sc.name, "my-run");
    EXPECT_EQ(sc.workload.name(), "my-app");
    ASSERT_EQ(sc.workload.numStages(), 2);
    EXPECT_EQ(sc.workload.stage(0).name, "FRONT");
    EXPECT_DOUBLE_EQ(sc.workload.stage(1).meanServiceSec, 0.6);
    EXPECT_DOUBLE_EQ(sc.workload.stage(1).participation, 0.75);
    EXPECT_EQ(sc.policy, PolicyKind::PowerChief);
    EXPECT_DOUBLE_EQ(sc.powerBudget.value(), 10.0);
    EXPECT_EQ(sc.duration, SimTime::sec(120));
    EXPECT_EQ(sc.control.adjustInterval, SimTime::sec(15));
    EXPECT_EQ(sc.seed, 7u);
    EXPECT_NEAR(sc.load.rateAt(SimTime::zero()), 1.0, 1e-9);
}

TEST(ConfigLoader, LoadedScenarioActuallyRuns)
{
    const auto result = scenarioFromJsonText(kFullConfig);
    ASSERT_TRUE(result.ok());
    const RunResult run = ExperimentRunner().run(*result.scenario);
    EXPECT_GT(run.completed, 50u);
    EXPECT_GT(run.avgLatencySec, 0.0);
}

TEST(ConfigLoader, BuiltinWorkloadShorthand)
{
    const auto result = scenarioFromJsonText(
        R"({"workload": "nlp", "scenario": {"policy": "freq"}})");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->workload.name(), "nlp");
    EXPECT_EQ(result.scenario->policy, PolicyKind::FreqBoost);
}

TEST(ConfigLoader, DefaultsApplyWithoutScenario)
{
    const auto result =
        scenarioFromJsonText(R"({"workload": "sirius"})");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->policy, PolicyKind::PowerChief);
    EXPECT_NEAR(result.scenario->powerBudget.value(), 13.56, 1e-9);
}

TEST(ConfigLoader, FanOutStageSupported)
{
    const auto result = scenarioFromJsonText(R"({
      "workload": {"stages": [
        {"name": "LEAF", "mean_sec": 0.01, "fanout": true,
         "shard_cv": 0.3},
        {"name": "AGG", "mean_sec": 0.004}
      ]},
      "scenario": {"qps": 5.0}
    })");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->workload.stage(0).kind,
              StageKind::FanOut);
    EXPECT_DOUBLE_EQ(result.scenario->workload.stage(0).shardCv, 0.3);
    EXPECT_EQ(result.scenario->workload.stage(1).kind,
              StageKind::Pipeline);
}

TEST(ConfigLoader, QosPolicyConfig)
{
    const auto result = scenarioFromJsonText(R"({
      "workload": "websearch",
      "scenario": {"policy": "conserve", "qos_sec": 0.25,
                   "adjust_interval_sec": 2, "qps": 20,
                   "instances_per_stage": 6}
    })");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->policy,
              PolicyKind::PowerChiefConserve);
    EXPECT_DOUBLE_EQ(result.scenario->qosTargetSec, 0.25);
    EXPECT_TRUE(result.scenario->control.enableWithdraw);
    EXPECT_EQ(result.scenario->initialCounts,
              (std::vector<int>{6, 6}));
}

TEST(ConfigLoader, FaultsAndStaleWindowSections)
{
    const auto result = scenarioFromJsonText(R"({
      "workload": "sirius",
      "scenario": {"stale_window_sec": 60},
      "faults": {
        "seed": 9,
        "bus": [{"endpoint": "command-*", "drop": 0.05}],
        "telemetry": {"rapl_fail": 0.1}
      }
    })");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->control.staleWindow, SimTime::sec(60));
    EXPECT_TRUE(result.scenario->faults.active);
    EXPECT_EQ(result.scenario->faults.seed, 9u);
    ASSERT_EQ(result.scenario->faults.bus.size(), 1u);
    EXPECT_EQ(result.scenario->faults.bus[0].endpoint, "command-*");
    EXPECT_DOUBLE_EQ(result.scenario->faults.bus[0].dropRate, 0.05);
    EXPECT_DOUBLE_EQ(result.scenario->faults.telemetry.raplFailRate,
                     0.1);

    // A schema violation in the faults section fails the whole load.
    EXPECT_FALSE(scenarioFromJsonText(R"({
      "workload": "sirius",
      "faults": {"bus": [{"drop": 7}]}
    })").ok());
}

TEST(ConfigLoader, RejectsBadDocuments)
{
    EXPECT_FALSE(scenarioFromJsonText("[1,2]").ok());
    EXPECT_FALSE(scenarioFromJsonText("{}").ok());
    EXPECT_FALSE(scenarioFromJsonText("not json").ok());
    EXPECT_FALSE(scenarioFromJsonText(
                     R"({"workload": "unknown-app"})")
                     .ok());
    // Stage without a mean.
    EXPECT_FALSE(scenarioFromJsonText(
                     R"({"workload": {"stages": [{"name": "A"}]}})")
                     .ok());
    // Stage without a name.
    EXPECT_FALSE(
        scenarioFromJsonText(
            R"({"workload": {"stages": [{"mean_sec": 1}]}})")
            .ok());
    // compute_fraction out of range.
    EXPECT_FALSE(scenarioFromJsonText(
                     R"({"workload": {"stages": [
                        {"name": "A", "mean_sec": 1,
                         "compute_fraction": 1.5}]}})")
                     .ok());
    // QoS policy without target.
    EXPECT_FALSE(scenarioFromJsonText(
                     R"({"workload": "sirius",
                         "scenario": {"policy": "pegasus"}})")
                     .ok());
    // Unknown policy.
    EXPECT_FALSE(scenarioFromJsonText(
                     R"({"workload": "sirius",
                         "scenario": {"policy": "yolo"}})")
                     .ok());
}

TEST(ConfigLoader, PerStageInstanceCounts)
{
    const auto result = scenarioFromJsonText(R"({
      "workload": "websearch",
      "scenario": {"policy": "conserve", "qos_sec": 0.25,
                   "instances": [10, 1], "qps": 20}
    })");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.scenario->initialCounts,
              (std::vector<int>{10, 1}));

    // Mismatched length is rejected.
    EXPECT_FALSE(scenarioFromJsonText(R"({
      "workload": "websearch",
      "scenario": {"instances": [10, 1, 1]}
    })")
                     .ok());
    // Non-positive entries are rejected.
    EXPECT_FALSE(scenarioFromJsonText(R"({
      "workload": "websearch",
      "scenario": {"instances": [10, 0]}
    })")
                     .ok());
}

TEST(ConfigLoader, ParseErrorsCarryPosition)
{
    const auto result = scenarioFromJsonText("{\"workload\": ");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("JSON parse error"), std::string::npos);
}

TEST(ConfigLoader, MissingFileReported)
{
    const auto result = scenarioFromFile("/nonexistent/nope.json");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace pc
