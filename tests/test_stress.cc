/**
 * @file
 * Kitchen-sink stress tests: every feature at once, long horizons,
 * adversarial knobs. These are slower than unit tests (still < 1 s
 * each) and exist to catch interactions no focused test exercises.
 */

#include <gtest/gtest.h>

#include "core/command_center.h"
#include "exp/result_cache.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "hal/power_limit.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

TEST(Stress, EverythingAtOnce)
{
    // Mixed Sirius (stage skipping) + wire reports + bus delay +
    // interference + withdraw + a RAPL enforcer, under a bursty load,
    // for 1200 simulated seconds. Invariants must survive the stack.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 16);
    chip.setInterference({0.02, 2});
    MessageBus bus(&sim);
    bus.setDeliveryDelay(SimTime::msec(1));

    const WorkloadModel mixed = WorkloadModel::siriusMixed();
    MultiStageApp app(&sim, &chip, &bus, "mixed",
                      mixed.layout(1, model.ladder().midLevel()));
    app.setWireReports(true);

    const SpeedupBook book =
        OfflineProfiler(40).profileWorkload(mixed, model, 3);
    PowerBudget budget(Watts(13.56), &model);
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(15);
    cfg.withdrawInterval = SimTime::sec(60);
    cfg.enableWithdraw = true;
    CommandCenter center(&sim, &bus, &chip, &app, &budget, &book, cfg,
                         std::make_unique<PowerChiefPolicy>());
    center.start();

    PowerLimitEnforcer enforcer(&sim, &chip, SimTime::sec(2));
    enforcer.setLimit(Watts(13.56));
    enforcer.start();

    LoadGenerator gen(&sim, &app, &mixed,
                      LoadProfile::fig11(mixed, 1800), 17,
                      model.ladder().freqAt(0).value());
    gen.start(SimTime::sec(1200));
    sim.runUntil(SimTime::sec(1200));

    // Liveness: the system processed the workload.
    EXPECT_GT(app.completed(), 300u);
    EXPECT_EQ(center.queriesObserved(), app.completed());
    EXPECT_EQ(center.malformedReports(), 0u);
    // Safety: budget held and hardware never had to intervene.
    EXPECT_LE(budget.allocated().value(), 13.56 + 1e-6);
    EXPECT_EQ(enforcer.throttleEvents(), 0u);
    // Conservation including skipped stages and withdrawals.
    std::size_t queued = 0;
    for (const auto *inst : app.allInstances())
        queued += inst->queueLength();
    EXPECT_EQ(app.submitted(), app.completed() + queued);
    // The control plane actually did things.
    const auto &trace = center.trace();
    EXPECT_GT(trace.count(TraceKind::FrequencyBoost) +
                  trace.count(TraceKind::InstanceLaunch),
              0u);
}

TEST(Stress, FanOutUnderAdaptiveControlLongRun)
{
    // Web Search with true fan-out under PowerChief mitigation (not
    // just the conserve mode): launches/withdrawals re-shard the
    // corpus while queries are in flight.
    Scenario sc;
    sc.name = "ws-stress";
    sc.workload = WorkloadModel::webSearch();
    sc.initialCounts = {4, 1};
    sc.initialLevel = -1;
    sc.policy = PolicyKind::PowerChief;
    sc.powerBudget = Watts(25.0);
    sc.control.adjustInterval = SimTime::sec(5);
    sc.control.withdrawInterval = SimTime::sec(30);
    sc.control.balanceThresholdSec = 0.0;
    sc.control.enableWithdraw = true;
    sc.load = LoadProfile::diurnal(5.0, 45.0, SimTime::sec(300));
    sc.duration = SimTime::sec(900);
    sc.warmup = SimTime::sec(20);
    const RunResult r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 15000u);
    EXPECT_LT(r.avgLatencySec, 1.0);
    ASSERT_EQ(r.stageBreakdown.size(), 2u);
    // Every query produced >= 1 leaf hop + 1 agg hop.
    EXPECT_GE(r.stageBreakdown[0].hops, r.stageBreakdown[1].hops);
}

TEST(Stress, RepeatedRunsShareNoHiddenState)
{
    // Back-to-back runs in one process must not bleed state into each
    // other (global instance-id counter aside, results are identical).
    const ExperimentRunner runner;
    Scenario sc = Scenario::mitigation(WorkloadModel::nlp(),
                                       LoadLevel::Medium,
                                       PolicyKind::PowerChief, 9);
    sc.duration = SimTime::sec(200);
    const auto first = runner.run(sc);
    RunResult last;
    for (int i = 0; i < 5; ++i)
        last = runner.run(sc);
    EXPECT_EQ(first.completed, last.completed);
    EXPECT_DOUBLE_EQ(first.avgLatencySec, last.avgLatencySec);
    EXPECT_DOUBLE_EQ(first.avgPowerWatts, last.avgPowerWatts);
}

TEST(Stress, TinyChipGracefulUnderOversizedAmbitions)
{
    // Only 4 cores: PowerChief wants to clone but can't; it must fall
    // back to DVFS and keep the pipeline alive.
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, 21);
    sc.numCores = 4;
    sc.duration = SimTime::sec(300);
    const RunResult r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 100u);
}

TEST(Stress, SubSecondAdjustIntervalsStayStable)
{
    // Web-search-speed control loops (Table 3 uses 2 s; push to
    // 500 ms) must not oscillate the budget ledger into violation.
    Scenario sc = Scenario::conservation(WorkloadModel::webSearch(),
                                         {6, 1}, 0.25,
                                         SimTime::msec(500),
                                         PolicyKind::PowerChiefConserve,
                                         5);
    sc.load = LoadProfile::constant(20.0);
    sc.duration = SimTime::sec(120);
    const RunResult r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 2000u);
    EXPECT_LT(r.avgLatencySec, 0.25);
}

TEST(Stress, SweepEngineDigestsHundredsOfScenarios)
{
    // 216 tiny but real simulations through the parallel sweep engine:
    // every workload x policy x a spread of seeds, short horizons.
    // Checks the engine under sustained load and that a second pass at
    // a different thread count reproduces every result bit-for-bit.
    const std::vector<WorkloadModel> workloads = {
        WorkloadModel::sirius(), WorkloadModel::nlp(),
        WorkloadModel::webSearch()};
    const std::vector<PolicyKind> policies = {
        PolicyKind::StageAgnostic, PolicyKind::FreqBoost,
        PolicyKind::InstBoost, PolicyKind::PowerChief};

    std::vector<Scenario> scenarios;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (PolicyKind policy : policies) {
            for (int seed = 1; seed <= 18; ++seed) {
                Scenario sc = Scenario::mitigation(
                    workloads[w], LoadLevel::Medium, policy, seed);
                sc.duration = SimTime::sec(30);
                sc.name += "/w" + std::to_string(w) + "s" +
                    std::to_string(seed);
                scenarios.push_back(std::move(sc));
            }
        }
    }
    ASSERT_GE(scenarios.size(), 200u);

    SweepOptions opt;
    opt.jobs = 4;
    SweepRunner sweep(opt);
    const std::vector<RunResult> first = sweep.runAll(scenarios);
    ASSERT_EQ(first.size(), scenarios.size());
    EXPECT_EQ(sweep.report().total, scenarios.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].scenario, scenarios[i].name);
        EXPECT_GT(first[i].completed, 0u);
    }

    // Spot-check determinism: re-run a sample at a different width.
    SweepOptions opt2;
    opt2.jobs = 2;
    SweepRunner sweep2(opt2);
    for (std::size_t i = 0; i < scenarios.size(); i += 37) {
        const RunResult again = sweep2.runOne(scenarios[i]);
        EXPECT_EQ(runResultToJson(first[i]).dump(),
                  runResultToJson(again).dump())
            << "scenario " << scenarios[i].name;
    }
}

} // namespace
} // namespace pc
