/**
 * @file
 * Parameterized full-matrix sweep: every mitigation policy on every
 * workload at every load level (and every QoS policy on both QoS
 * setups) runs a short scenario end to end, and the universal
 * invariants hold. This is the breadth net that catches a regression
 * in any single policy/workload combination.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "exp/runner.h"

namespace pc {
namespace {

WorkloadModel
workloadByName(const std::string &name)
{
    if (name == "sirius")
        return WorkloadModel::sirius();
    if (name == "sirius-mixed")
        return WorkloadModel::siriusMixed();
    return WorkloadModel::nlp();
}

void
checkUniversalInvariants(const RunResult &r)
{
    EXPECT_GT(r.completed, 0u);
    EXPECT_LE(r.completed, r.submitted);
    EXPECT_GT(r.avgLatencySec, 0.0);
    EXPECT_GE(r.p99LatencySec, r.avgLatencySec * 0.5);
    EXPECT_GE(r.maxLatencySec, r.p99LatencySec - 1e-9);
    EXPECT_GT(r.avgPowerWatts, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
    for (const auto &b : r.stageBreakdown) {
        EXPECT_GE(b.avgQueuingSec, 0.0);
        EXPECT_GE(b.avgServingSec, 0.0);
    }
}

// ----------------------------------------------------- mitigation grid

using MitigationParam =
    std::tuple<std::string /*workload*/, LoadLevel, PolicyKind>;

class MitigationSweep
    : public testing::TestWithParam<MitigationParam>
{
};

TEST_P(MitigationSweep, RunsAndHoldsInvariants)
{
    const auto &[workloadName, level, policy] = GetParam();
    const WorkloadModel workload = workloadByName(workloadName);
    Scenario sc = Scenario::mitigation(workload, level, policy, 7);
    sc.duration = SimTime::sec(150);
    sc.warmup = SimTime::sec(10);
    const RunResult r = ExperimentRunner().run(sc);
    checkUniversalInvariants(r);
    // Power capped by the budget (modelled RAPL draw below cap).
    EXPECT_LE(r.avgPowerWatts, 13.56 + 1e-6);
}

std::string
mitigationName(const testing::TestParamInfo<MitigationParam> &info)
{
    const auto &[workload, level, policy] = info.param;
    std::string name = workload + "_" + toString(level) + "_" +
        toString(policy);
    for (char &c : name)
        if (c == '-' || c == '/')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MitigationSweep,
    testing::Combine(
        testing::Values("sirius", "sirius-mixed", "nlp"),
        testing::Values(LoadLevel::Low, LoadLevel::Medium,
                        LoadLevel::High),
        testing::Values(PolicyKind::StageAgnostic,
                        PolicyKind::FreqBoost, PolicyKind::InstBoost,
                        PolicyKind::PowerChief)),
    mitigationName);

// ------------------------------------------------------------ QoS grid

using QosParam = std::tuple<std::string, PolicyKind>;

class QosSweep : public testing::TestWithParam<QosParam>
{
};

TEST_P(QosSweep, RunsAndHoldsInvariants)
{
    const auto &[workloadName, policy] = GetParam();
    Scenario sc;
    if (workloadName == "websearch") {
        sc = Scenario::conservation(WorkloadModel::webSearch(), {6, 1},
                                    0.25, SimTime::sec(2), policy, 7);
        sc.load = LoadProfile::constant(15.0);
    } else {
        sc = Scenario::conservation(WorkloadModel::sirius(), {4, 2, 5},
                                    3.0, SimTime::sec(10), policy, 7);
        sc.load = LoadProfile::constant(0.8);
    }
    sc.duration = SimTime::sec(200);
    sc.warmup = SimTime::sec(20);
    const RunResult r = ExperimentRunner().run(sc);
    checkUniversalInvariants(r);
    // Both QoS policies keep the mean latency signal under the target.
    EXPECT_LT(r.avgLatencySec, sc.qosTargetSec);
}

std::string
qosName(const testing::TestParamInfo<QosParam> &info)
{
    const auto &[workload, policy] = info.param;
    std::string name = workload + "_" + toString(policy);
    for (char &c : name)
        if (c == '-' || c == '/')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QosSweep,
    testing::Combine(testing::Values("sirius", "websearch"),
                     testing::Values(PolicyKind::Pegasus,
                                     PolicyKind::PowerChiefConserve)),
    qosName);

// ------------------------------------------- cross-policy consistency

TEST(SweepConsistency, AdaptiveNeverMuchWorseThanBestStatic)
{
    // At every load level, PowerChief must land within 2x of the
    // better of the two static techniques (the paper's adaptive-
    // dominance claim with slack for control transients).
    const WorkloadModel sirius = WorkloadModel::sirius();
    const ExperimentRunner runner;
    for (LoadLevel level :
         {LoadLevel::Low, LoadLevel::Medium, LoadLevel::High}) {
        auto runOf = [&](PolicyKind policy) {
            Scenario sc = Scenario::mitigation(sirius, level, policy);
            sc.duration = SimTime::sec(400);
            return runner.run(sc).avgLatencySec;
        };
        const double freq = runOf(PolicyKind::FreqBoost);
        const double inst = runOf(PolicyKind::InstBoost);
        const double chief = runOf(PolicyKind::PowerChief);
        EXPECT_LT(chief, 2.0 * std::min(freq, inst))
            << "at " << toString(level) << " load";
    }
}

} // namespace
} // namespace pc
