/** @file Unit tests for the command-line flag parser. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/flags.h"

namespace pc {
namespace {

std::vector<const char *>
argvOf(std::initializer_list<const char *> args)
{
    std::vector<const char *> v{"prog"};
    v.insert(v.end(), args);
    return v;
}

class FlagsTest : public testing::Test
{
  protected:
    FlagsTest() : flags("prog")
    {
        flags.addString("name", "default", "a string");
        flags.addDouble("rate", 1.5, "a double");
        flags.addInt("count", 7, "an int");
        flags.addBool("verbose", false, "a bool");
    }

    bool
    parse(std::initializer_list<const char *> args)
    {
        auto v = argvOf(args);
        return flags.parse(static_cast<int>(v.size()), v.data());
    }

    FlagSet flags;
};

TEST_F(FlagsTest, DefaultsWithoutArgs)
{
    EXPECT_TRUE(parse({}));
    EXPECT_EQ(flags.getString("name"), "default");
    EXPECT_DOUBLE_EQ(flags.getDouble("rate"), 1.5);
    EXPECT_EQ(flags.getInt("count"), 7);
    EXPECT_FALSE(flags.getBool("verbose"));
    EXPECT_FALSE(flags.isSet("name"));
}

TEST_F(FlagsTest, EqualsForm)
{
    EXPECT_TRUE(parse({"--name=x", "--rate=2.25", "--count=-3",
                       "--verbose=true"}));
    EXPECT_EQ(flags.getString("name"), "x");
    EXPECT_DOUBLE_EQ(flags.getDouble("rate"), 2.25);
    EXPECT_EQ(flags.getInt("count"), -3);
    EXPECT_TRUE(flags.getBool("verbose"));
    EXPECT_TRUE(flags.isSet("rate"));
}

TEST_F(FlagsTest, SpaceForm)
{
    EXPECT_TRUE(parse({"--name", "y", "--count", "12"}));
    EXPECT_EQ(flags.getString("name"), "y");
    EXPECT_EQ(flags.getInt("count"), 12);
}

TEST_F(FlagsTest, BareBooleanMeansTrue)
{
    EXPECT_TRUE(parse({"--verbose"}));
    EXPECT_TRUE(flags.getBool("verbose"));
}

TEST_F(FlagsTest, PositionalArgumentsCollected)
{
    EXPECT_TRUE(parse({"alpha", "--count=1", "beta"}));
    EXPECT_EQ(flags.positional(),
              (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(FlagsTest, UnknownFlagRejected)
{
    EXPECT_FALSE(parse({"--bogus=1"}));
    EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST_F(FlagsTest, MalformedNumbersRejected)
{
    EXPECT_FALSE(parse({"--rate=fast"}));
    EXPECT_FALSE(parse({"--count=1.5"}));
    EXPECT_FALSE(parse({"--verbose=yes"}));
}

TEST_F(FlagsTest, MissingValueRejected)
{
    EXPECT_FALSE(parse({"--name"}));
    EXPECT_NE(flags.error().find("missing a value"), std::string::npos);
}

TEST_F(FlagsTest, HelpRequested)
{
    EXPECT_FALSE(parse({"--help"}));
    EXPECT_TRUE(flags.helpRequested());
    EXPECT_FALSE(parse({"-h"}));
    EXPECT_TRUE(flags.helpRequested());
}

TEST_F(FlagsTest, UsageListsFlags)
{
    std::ostringstream out;
    flags.printUsage(out);
    EXPECT_NE(out.str().find("--rate"), std::string::npos);
    EXPECT_NE(out.str().find("a double"), std::string::npos);
}

TEST_F(FlagsTest, ReparseResetsState)
{
    EXPECT_TRUE(parse({"--name=x", "pos"}));
    EXPECT_TRUE(parse({"--count=2"}));
    EXPECT_TRUE(flags.positional().empty());
    // Values persist from the last successful assignment only.
    EXPECT_EQ(flags.getInt("count"), 2);
}

TEST(FlagsDeath, UnregisteredAccessPanics)
{
    FlagSet flags("prog");
    EXPECT_DEATH((void)flags.getString("nope"), "never registered");
}

TEST(FlagsDeath, WrongTypeAccessPanics)
{
    FlagSet flags("prog");
    flags.addInt("n", 1, "");
    EXPECT_DEATH((void)flags.getString("n"), "wrong type");
}

} // namespace
} // namespace pc
