/** @file Unit tests for Query, WorkDemand and HopRecord. */

#include <gtest/gtest.h>

#include "app/query.h"

namespace pc {
namespace {

TEST(WorkDemand, ServiceTimeScalesComputeOnly)
{
    WorkDemand d;
    d.cpuSecAtRef = 1.2; // quoted at 1200 MHz
    d.memSec = 0.3;
    EXPECT_DOUBLE_EQ(d.serviceSec(1200, 1200), 1.5);
    EXPECT_DOUBLE_EQ(d.serviceSec(2400, 1200), 0.3 + 0.6);
    EXPECT_DOUBLE_EQ(d.serviceSec(1800, 1200), 0.3 + 0.8);
}

TEST(WorkDemand, PureMemoryIsFrequencyInsensitive)
{
    WorkDemand d;
    d.memSec = 0.5;
    EXPECT_DOUBLE_EQ(d.serviceSec(1200, 1200), 0.5);
    EXPECT_DOUBLE_EQ(d.serviceSec(2400, 1200), 0.5);
}

TEST(WorkDemand, HigherFrequencyNeverSlower)
{
    WorkDemand d;
    d.cpuSecAtRef = 0.7;
    d.memSec = 0.1;
    double prev = 1e9;
    for (int mhz = 1200; mhz <= 2400; mhz += 100) {
        const double t = d.serviceSec(mhz, 1200);
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST(HopRecord, QueuingAndServing)
{
    HopRecord hop;
    hop.enqueued = SimTime::sec(1);
    hop.started = SimTime::sec(3);
    hop.finished = SimTime::sec(7);
    EXPECT_EQ(hop.queuing(), SimTime::sec(2));
    EXPECT_EQ(hop.serving(), SimTime::sec(4));
}

TEST(Query, BasicAccessors)
{
    Query q(42, SimTime::sec(5), {WorkDemand{1.0, 0.1}});
    EXPECT_EQ(q.id(), 42);
    EXPECT_EQ(q.arrival(), SimTime::sec(5));
    EXPECT_EQ(q.numStages(), 1);
    EXPECT_FALSE(q.completed());
}

TEST(Query, DemandPerStage)
{
    Query q(1, SimTime::zero(),
            {WorkDemand{1.0, 0.0}, WorkDemand{2.0, 0.5}});
    EXPECT_DOUBLE_EQ(q.demand(0).cpuSecAtRef, 1.0);
    EXPECT_DOUBLE_EQ(q.demand(1).memSec, 0.5);
}

TEST(Query, HopsAccumulateInOrder)
{
    Query q(1, SimTime::zero(), {WorkDemand{}, WorkDemand{}});
    HopRecord first;
    first.instanceId = 10;
    HopRecord second;
    second.instanceId = 20;
    q.addHop(first);
    q.addHop(second);
    ASSERT_EQ(q.hops().size(), 2u);
    EXPECT_EQ(q.hops()[0].instanceId, 10);
    EXPECT_EQ(q.hops()[1].instanceId, 20);
}

TEST(Query, EndToEndLatency)
{
    Query q(1, SimTime::sec(2), {WorkDemand{}});
    q.markCompleted(SimTime::sec(10));
    EXPECT_TRUE(q.completed());
    EXPECT_EQ(q.endToEnd(), SimTime::sec(8));
}

TEST(QueryDeath, DemandIndexOutOfRangePanics)
{
    Query q(7, SimTime::zero(), {WorkDemand{}});
    EXPECT_DEATH((void)q.demand(1), "stage");
    EXPECT_DEATH((void)q.demand(-1), "stage");
}

} // namespace
} // namespace pc
