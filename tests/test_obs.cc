/** @file Tests for the telemetry layer: metrics, spans, exports. */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/json.h"
#include "common/logging.h"
#include "exp/result_cache.h"
#include "exp/sweep.h"
#include "obs/telemetry.h"

namespace pc {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

JsonValue
parsed(const std::string &text)
{
    const JsonParseResult result = parseJson(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return result.ok() ? *result.value : JsonValue();
}

// ---------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("c");
    c.add();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);

    Gauge &g = registry.gauge("g");
    g.set(7.0);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);

    Histogram &h = registry.histogram("h");
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    // ExactPercentile interpolates between the order statistics.
    EXPECT_DOUBLE_EQ(h.p99(), 99.01);
    EXPECT_FALSE(registry.empty());
}

TEST(Metrics, FindOrCreateReturnsTheSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    a.add(5.0);
    EXPECT_EQ(&a, &registry.counter("x"));
    EXPECT_DOUBLE_EQ(registry.counter("x").value(), 5.0);
}

TEST(Metrics, VolatileMetricsExcludedFromDumpsByDefault)
{
    MetricsRegistry registry;
    registry.counter("stable").add();
    registry.histogram("wallclock", Volatility::Volatile).add(1.0);

    const JsonValue normal = parsed(registry.toJson().dump());
    EXPECT_NE(normal.find("counters")->find("stable"), nullptr);
    EXPECT_EQ(normal.find("histograms")->find("wallclock"), nullptr);

    const JsonValue full = parsed(registry.toJson(true).dump());
    EXPECT_NE(full.find("histograms")->find("wallclock"), nullptr);
}

TEST(Metrics, IdenticalOperationsProduceIdenticalDumps)
{
    auto populate = [](MetricsRegistry &registry) {
        registry.counter("z.last").add(3);
        registry.counter("a.first").add(1);
        registry.gauge("mid").set(0.1234567890123);
        registry.histogram("lat").add(0.25);
        registry.snapshot(SimTime::sec(5));
    };
    MetricsRegistry first, second;
    populate(first);
    populate(second);

    std::ostringstream a, b;
    first.writeJson(a, "scenario-x");
    second.writeJson(b, "scenario-x");
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(a.str().back(), '\n');
}

TEST(Metrics, SnapshotAppendsStableSeries)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("jobs");
    c.add();
    registry.snapshot(SimTime::sec(1));
    c.add();
    registry.snapshot(SimTime::sec(2));

    const JsonValue root = parsed(registry.toJson().dump());
    const JsonValue *series = root.find("series")->find("jobs");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(series->asArray()[0].asArray()[1].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(series->asArray()[1].asArray()[1].asNumber(), 2.0);
}

TEST(Metrics, CsvDumpContainsEveryKind)
{
    MetricsRegistry registry;
    registry.counter("c").add(2);
    registry.gauge("g").set(4);
    registry.histogram("h").add(8);
    std::ostringstream out;
    registry.writeCsv(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("c,counter"), std::string::npos);
    EXPECT_NE(text.find("g,gauge"), std::string::npos);
    EXPECT_NE(text.find("h,histogram"), std::string::npos);
}

TEST(Metrics, ClearDropsEverything)
{
    MetricsRegistry registry;
    registry.counter("c").add();
    registry.snapshot(SimTime::sec(1));
    registry.clear();
    EXPECT_TRUE(registry.empty());
}

// ----------------------------------------------------------- logger

TEST(Logger, GlobalRegistryCountsWarningsEvenWhenSuppressed)
{
    MetricsRegistry &global = MetricsRegistry::global();
    const double warnsBefore =
        global.counter("log.warnings_total").value();
    const double errorsBefore =
        global.counter("log.errors_total").value();

    // Raise the level so nothing is emitted; the hook still counts.
    const LogLevel oldLevel = Logger::instance().level();
    Logger::instance().setLevel(LogLevel::Off);
    logWarn("suppressed warning %d", 1);
    logError("suppressed error %d", 2);
    Logger::instance().setLevel(oldLevel);

    EXPECT_DOUBLE_EQ(global.counter("log.warnings_total").value(),
                     warnsBefore + 1.0);
    EXPECT_DOUBLE_EQ(global.counter("log.errors_total").value(),
                     errorsBefore + 1.0);
}

TEST(Logger, EmitsTimestampAndLevelPrefix)
{
    MetricsRegistry::global(); // ensure the hook install is covered
    testing::internal::CaptureStderr();
    logError("boom %d", 42);
    const std::string text = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(testing::internal::RE::FullMatch(
        text,
        testing::internal::RE(
            "\\[[0-9]{4}-[0-9]{2}-[0-9]{2} "
            "[0-9]{2}:[0-9]{2}:[0-9]{2}\\] \\[ERROR\\] boom 42\n")))
        << "unexpected log line: " << text;
}

// ------------------------------------------------------- trace sink

Query
twoHopQuery(std::int64_t id)
{
    Query q(id, SimTime::zero(),
            std::vector<WorkDemand>{{1.0, 0.0}, {1.0, 0.0}});
    HopRecord first;
    first.instanceId = 101;
    first.stageIndex = 0;
    first.enqueued = SimTime::sec(1);
    first.started = SimTime::sec(2);
    first.finished = SimTime::sec(3);
    q.addHop(first);
    HopRecord second;
    second.instanceId = 202;
    second.stageIndex = 1;
    second.enqueued = SimTime::sec(3);
    second.started = SimTime::sec(3); // no queue wait at hop 2
    second.finished = SimTime::sec(5);
    q.addHop(second);
    return q;
}

TEST(TraceSink, DisabledSinkRecordsNothing)
{
    TraceSink sink(false);
    sink.declareInstanceTrack(101, "QA_1", 0);
    sink.span(TraceSink::kControlTrack, "s", "c", SimTime::zero(),
              SimTime::sec(1));
    sink.instant(TraceSink::kControlTrack, "i", "c", SimTime::sec(1));
    sink.recordQueryHops(twoHopQuery(7));
    EXPECT_EQ(sink.numEvents(), 0u);
}

TEST(TraceSink, UnknownInstanceFallsBackToControlTrack)
{
    TraceSink sink(true);
    EXPECT_EQ(sink.trackForInstance(999), TraceSink::kControlTrack);
    sink.declareInstanceTrack(999, "QA_1", 0);
    EXPECT_NE(sink.trackForInstance(999), TraceSink::kControlTrack);
}

TEST(TraceSink, ChromeExportIsWellFormed)
{
    TraceSink sink(true);
    sink.declareInstanceTrack(101, "QA_1", 0);
    sink.declareInstanceTrack(202, "ASR_1", 1);
    sink.recordQueryHops(twoHopQuery(7));
    JsonObject args;
    args["subject"] = JsonValue("QA_1");
    sink.instant(TraceSink::kControlTrack, "freq-boost", "decision",
                 SimTime::sec(4), std::move(args));

    std::ostringstream out;
    sink.writeChromeTrace(out);
    const JsonValue root = parsed(out.str());
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Expect: wait+serve spans for hop 1 (queue wait 1s), a serve span
    // for hop 2 (no wait), flow start+finish, the instant, plus
    // metadata records; timestamps of non-metadata events monotone.
    std::size_t spans = 0, flows = 0, instants = 0;
    double lastTs = -1.0;
    for (const JsonValue &ev : events->asArray()) {
        const std::string ph = ev.find("ph")->asString();
        if (ph == "M")
            continue;
        const double ts = ev.find("ts")->asNumber();
        EXPECT_GE(ts, lastTs);
        lastTs = ts;
        if (ph == "X")
            ++spans;
        else if (ph == "s" || ph == "t" || ph == "f")
            ++flows;
        else if (ph == "i")
            ++instants;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(flows, 2u);
    EXPECT_EQ(instants, 1u);
}

TEST(TraceSinkDeath, BackwardsSpanPanics)
{
    TraceSink sink(true);
    EXPECT_DEATH(sink.span(TraceSink::kControlTrack, "bad", "c",
                           SimTime::sec(2), SimTime::sec(1)),
                 "ends before");
}

// -------------------------------------------------------- telemetry

TEST(TelemetryConfig, ResolvesPerScenarioPaths)
{
    EXPECT_EQ(TelemetryConfig::resolveForScenario("out/t.json",
                                                  "fig11/PowerChief",
                                                  true),
              "out/t.fig11-PowerChief.json");
    EXPECT_EQ(TelemetryConfig::resolveForScenario("trace", "a b", true),
              "trace.a-b");
    // Single-run invocations keep the user's path untouched.
    EXPECT_EQ(TelemetryConfig::resolveForScenario("t.json", "x", false),
              "t.json");
    EXPECT_EQ(TelemetryConfig::resolveForScenario("", "x", true), "");
}

Scenario
smallScenario(const std::string &name, std::uint64_t seed)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief,
                                       static_cast<int>(seed));
    sc.duration = SimTime::sec(120);
    sc.name = name;
    return sc;
}

TEST(TelemetryEndToEnd, PureObserverAndMatchingPercentiles)
{
    const std::string dir = testing::TempDir();
    const Scenario sc = smallScenario("obs/pure", 11);

    const ExperimentRunner runner;
    const RunResult bare = runner.run(sc);

    TelemetryConfig cfg;
    cfg.traceOut = dir + "obs_pure_trace.json";
    cfg.metricsOut = dir + "obs_pure_metrics.json";
    const RunResult observed = runner.run(sc, &cfg);

    // Telemetry must not perturb the simulation at all.
    EXPECT_EQ(runResultToJson(bare).dump(),
              runResultToJson(observed).dump());

    // The dumped e2e histogram is built from the very samples behind
    // the printed result, so the percentiles agree exactly.
    const JsonValue metrics = parsed(slurp(cfg.metricsOut));
    const JsonValue *e2e =
        metrics.find("histograms")->find("latency.e2e_sec");
    ASSERT_NE(e2e, nullptr);
    EXPECT_DOUBLE_EQ(e2e->find("p99")->asNumber(),
                     observed.p99LatencySec);
    EXPECT_DOUBLE_EQ(e2e->find("mean")->asNumber(),
                     observed.avgLatencySec);

    // One serve span per completed hop reached the trace.
    const JsonValue trace = parsed(slurp(cfg.traceOut));
    std::size_t serveSpans = 0;
    for (const JsonValue &ev : trace.find("traceEvents")->asArray()) {
        if (ev.find("ph")->asString() == "X" &&
            ev.stringOr("cat", "") == "serve")
            ++serveSpans;
    }
    std::uint64_t hops = 0;
    for (const auto &stage : observed.stageBreakdown)
        hops += stage.hops;
    EXPECT_GE(serveSpans, hops);
}

TEST(TelemetryEndToEnd, SweepFilesByteIdenticalAtAnyJobs)
{
    const std::string dir = testing::TempDir();
    const std::vector<Scenario> scenarios = {
        smallScenario("obs/sweep-a", 21),
        smallScenario("obs/sweep-b", 22)};

    auto runWith = [&](int jobs, const std::string &tag) {
        SweepOptions options;
        options.jobs = jobs;
        options.useCache = false;
        options.telemetry.traceOut = dir + tag + "_t.json";
        options.telemetry.metricsOut = dir + tag + "_m.json";
        options.telemetry.auditOut = dir + tag + "_a.json";
        SweepRunner sweep(options);
        sweep.runAll(scenarios);
        return tag;
    };
    runWith(1, "obs_serial");
    runWith(4, "obs_parallel");

    for (const char *kind : {"_t", "_m", "_a"}) {
        for (const char *sc : {"obs-sweep-a", "obs-sweep-b"}) {
            const std::string serial = dir + "obs_serial" +
                std::string(kind) + "." + sc + ".json";
            const std::string parallel = dir + "obs_parallel" +
                std::string(kind) + "." + sc + ".json";
            EXPECT_EQ(slurp(serial), slurp(parallel))
                << serial << " vs " << parallel;
        }
    }
}

TEST(TelemetryFlagsDeath, UnwritableOutputPathsAreRejectedAtParse)
{
    const auto configFor = [](const char *arg) {
        FlagSet flags("t");
        addTelemetryFlags(&flags);
        const char *argv[] = {"t", arg};
        if (!flags.parse(2, argv))
            fatal("unexpected parse failure");
        (void)telemetryConfigFromFlags(flags);
    };
    // A missing directory must fail fast at flag validation, not after
    // a long run when the file is finally opened.
    EXPECT_DEATH(configFor("--trace-out=/nonexistent-pc-dir/t.json"),
                 "--trace-out: cannot write");
    EXPECT_DEATH(configFor("--metrics-out=/nonexistent-pc-dir/m.json"),
                 "--metrics-out: cannot write");
    EXPECT_DEATH(configFor("--audit-out=/nonexistent-pc-dir/a.json"),
                 "--audit-out: cannot write");
}

TEST(TelemetryFlags, WritablePathsAndAttributionParse)
{
    const std::string dir = testing::TempDir();
    const std::string arg = "--audit-out=" + dir + "flags_a.json";
    FlagSet flags("t");
    addTelemetryFlags(&flags);
    const char *argv[] = {"t", arg.c_str(), "--attribution"};
    ASSERT_TRUE(flags.parse(3, argv));
    const TelemetryConfig cfg = telemetryConfigFromFlags(flags);
    EXPECT_TRUE(cfg.auditEnabled());
    EXPECT_TRUE(cfg.anyEnabled());
    EXPECT_TRUE(flags.getBool("attribution"));
    // The writability probe must not leave a file behind.
    std::ifstream probe(dir + "flags_a.json");
    EXPECT_FALSE(probe.good());
}

TEST(TelemetryEndToEnd, SweepWithTelemetryBypassesCache)
{
    const std::string dir = testing::TempDir();
    SweepOptions options;
    options.jobs = 1;
    options.useCache = true;
    options.cacheDir = dir + "obs_cache";
    options.telemetry.metricsOut = dir + "obs_cache_m.json";
    SweepRunner sweep(options);
    sweep.runAll({smallScenario("obs/cache", 31)});
    EXPECT_EQ(sweep.report().cacheHits, 0u);
    // Same sweep again: still executed, never served from cache.
    sweep.runAll({smallScenario("obs/cache", 31)});
    EXPECT_EQ(sweep.report().cacheHits, 0u);
    EXPECT_EQ(sweep.report().cacheMisses, 1u);
}

} // namespace
} // namespace pc
