/**
 * @file
 * Critical-path tests: the pure critPathOf reconstruction (fan-out
 * slowest-shard selection, wasted/re-dispatch segmentation, signatures,
 * dominance tie-breaks), the CritPathCollector's per-interval
 * bottleneck-efficacy scoring with misboost audit records, fan-out hop
 * recording through withdraw re-sharding, wasted segments from a real
 * crash, and dump determinism across sweep thread counts under a clean
 * and a lossy fabric.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "common/json.h"
#include "exp/result_cache.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/audit.h"
#include "obs/critpath.h"
#include "obs/telemetry.h"

namespace pc {
namespace {

// ----------------------------------------------------------- helpers

HopRecord
hop(int stage, double enqSec, double startSec, double finSec)
{
    HopRecord h;
    h.instanceId = 100 + stage;
    h.stageIndex = stage;
    h.enqueued = SimTime::sec(enqSec);
    h.started = SimTime::sec(startSec);
    h.finished = SimTime::sec(finSec);
    return h;
}

QueryPtr
emptyQuery(int stages)
{
    return std::make_shared<Query>(
        1, SimTime(),
        std::vector<WorkDemand>(static_cast<std::size_t>(stages)));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// --------------------------------------------------------- critPathOf

TEST(CritPathOf, EmptyQueryYieldsEmptyBreakdown)
{
    const CritPathBreakdown bd = critPathOf(*emptyQuery(2));
    EXPECT_TRUE(bd.segments.empty());
    EXPECT_EQ(bd.dominantStage, -1);
    EXPECT_TRUE(bd.signature.empty());
}

TEST(CritPathOf, PipelineSegmentsIntoQueueAndServe)
{
    auto q = emptyQuery(2);
    q->addHop(hop(0, 0.0, 0.1, 0.5)); // queue 0.1, serve 0.4
    q->addHop(hop(1, 0.5, 0.7, 0.9)); // queue 0.2, serve 0.2
    q->markCompleted(SimTime::sec(0.9));

    const CritPathBreakdown bd = critPathOf(*q);
    ASSERT_EQ(bd.segments.size(), 2u);
    EXPECT_EQ(bd.segments[0].stage, 0);
    EXPECT_NEAR(bd.segments[0].queueSec, 0.1, 1e-9);
    EXPECT_NEAR(bd.segments[0].serveSec, 0.4, 1e-9);
    EXPECT_NEAR(bd.segments[0].wastedSec, 0.0, 1e-9);
    EXPECT_NEAR(bd.segments[0].redispatchSec, 0.0, 1e-9);
    EXPECT_EQ(bd.segments[1].stage, 1);
    EXPECT_NEAR(bd.segments[1].queueSec, 0.2, 1e-9);
    EXPECT_NEAR(bd.segments[1].serveSec, 0.2, 1e-9);
    EXPECT_EQ(bd.signature, "s0>s1");
    EXPECT_EQ(bd.dominantStage, 0); // 0.5 s vs 0.4 s
    EXPECT_NEAR(bd.endToEndSec, 0.9, 1e-9);
}

TEST(CritPathOf, FanOutPicksSlowestShard)
{
    auto q = emptyQuery(2);
    for (int shard = 0; shard < 4; ++shard) {
        // Shard 2 finishes last: 0.0 .. 0.8 s.
        HopRecord h = hop(0, 0.0, 0.0, shard == 2 ? 0.8 : 0.3);
        h.shardIndex = shard;
        h.shardCount = 4;
        h.servedMhz = 1800 + 100 * shard;
        h.boosted = shard == 2;
        q->addHop(h);
    }
    q->addHop(hop(1, 0.8, 0.8, 1.0));
    q->markCompleted(SimTime::sec(1.0));

    const CritPathBreakdown bd = critPathOf(*q);
    ASSERT_EQ(bd.segments.size(), 2u);
    const auto &leaf = bd.segments[0];
    EXPECT_EQ(leaf.stage, 0);
    EXPECT_NEAR(leaf.serveSec, 0.8, 1e-9); // slowest shard only
    EXPECT_EQ(leaf.shardCount, 4);
    EXPECT_EQ(leaf.servedMhz, 2000);
    EXPECT_TRUE(leaf.boosted);
    EXPECT_EQ(bd.signature, "s0x4>s1");
    EXPECT_EQ(bd.dominantStage, 0);
}

TEST(CritPathOf, WastedAndRedispatchCarvedOutOfQueuing)
{
    // Crash at stage 0: 0.5 s of service is wasted, the adopting
    // peer starts 0.4 s after the crash, and only 0.1 s is genuine
    // queuing. The completing hop keeps the original enqueue stamp.
    auto q = emptyQuery(1);
    HopRecord dead = hop(0, 0.0, 0.1, 0.6);
    dead.wasted = true;
    q->addHop(dead);
    q->addHop(hop(0, 0.0, 1.0, 1.5));
    q->markCompleted(SimTime::sec(1.5));

    const CritPathBreakdown bd = critPathOf(*q);
    ASSERT_EQ(bd.segments.size(), 1u);
    const auto &seg = bd.segments[0];
    EXPECT_NEAR(seg.wastedSec, 0.5, 1e-9);
    EXPECT_NEAR(seg.redispatchSec, 0.4, 1e-9);
    EXPECT_NEAR(seg.queueSec, 0.1, 1e-9);
    EXPECT_NEAR(seg.serveSec, 0.5, 1e-9);
    // Segments sum exactly to the hop's queuing + serving span.
    EXPECT_NEAR(seg.totalSec(), 1.5, 1e-9);
    EXPECT_EQ(bd.signature, "s0!");
}

TEST(CritPathOf, WastedOnlyStageContributesNoSegment)
{
    // A crash before any completing hop at stage 0: the path runs
    // through stage 1 alone.
    auto q = emptyQuery(2);
    HopRecord dead = hop(0, 0.0, 0.0, 0.4);
    dead.wasted = true;
    q->addHop(dead);
    q->addHop(hop(1, 0.4, 0.4, 1.0));
    q->markCompleted(SimTime::sec(1.0));

    const CritPathBreakdown bd = critPathOf(*q);
    ASSERT_EQ(bd.segments.size(), 1u);
    EXPECT_EQ(bd.segments[0].stage, 1);
    EXPECT_EQ(bd.signature, "s1");
    EXPECT_EQ(bd.dominantStage, 1);
}

TEST(CritPathOf, DominanceTieBreaksTowardLowestStage)
{
    auto q = emptyQuery(2);
    q->addHop(hop(0, 0.0, 0.0, 1.0));  // total 1.0
    q->addHop(hop(1, 1.0, 1.5, 2.0));  // total 1.0
    q->markCompleted(SimTime::sec(2.0));
    EXPECT_EQ(critPathOf(*q).dominantStage, 0);
}

// ------------------------------------------------- CritPathCollector

QueryPtr
singleStageQuery(std::int64_t id, int stage, double critSec)
{
    auto q = std::make_shared<Query>(
        id, SimTime(),
        std::vector<WorkDemand>(static_cast<std::size_t>(stage + 1)));
    q->addHop(hop(stage, 0.0, 0.0, critSec));
    q->markCompleted(SimTime::sec(critSec));
    return q;
}

TEST(CritPathCollector, ScoresAgreementMisboostAndShortening)
{
    AuditLog audit(true);
    CritPathCollector cp(&audit);

    // Interval 1: stage 1 dominates (2 s), stage 1 boosted -> agree.
    cp.observeQuery(SimTime::sec(10), *singleStageQuery(1, 1, 2.0),
                    true);
    cp.onControlInterval(SimTime::sec(25), {1, 1}); // dup deduped
    // Interval 2: stage 1 dominates (1 s), stage 0 boosted -> misboost.
    cp.observeQuery(SimTime::sec(30), *singleStageQuery(2, 1, 1.0),
                    true);
    cp.onControlInterval(SimTime::sec(50), {0});
    // Interval 3: boost with no completions -> boosted but unscored.
    cp.onControlInterval(SimTime::sec(75), {1});
    // Interval 4: completions, no boost -> scored disagreement.
    cp.observeQuery(SimTime::sec(80), *singleStageQuery(3, 1, 1.0),
                    true);
    cp.onControlInterval(SimTime::sec(100), {});

    EXPECT_EQ(cp.intervals(), 4u);
    EXPECT_EQ(cp.scoredIntervals(), 3u);
    EXPECT_EQ(cp.agreeIntervals(), 1u);
    EXPECT_EQ(cp.boostIntervals(), 3u);
    EXPECT_EQ(cp.misboosts(), 1u);
    EXPECT_NEAR(cp.agreementRate(), 1.0 / 3.0, 1e-12);
    // Interval 1 was boosted at mean 2.0 s; interval 2's mean is
    // 1.0 s: a 50 % realized shortening. Interval 2's pending boost
    // is dropped because interval 3 had no completions.
    EXPECT_NEAR(cp.meanShorteningPct(), 50.0, 1e-9);
    EXPECT_EQ(cp.profiledQueries(), 3u);

    ASSERT_EQ(audit.records().size(), 1u);
    const AuditRecord &rec = audit.records().front();
    EXPECT_EQ(rec.kind, AuditDecisionKind::Misboost);
    EXPECT_EQ(rec.misboostBoostedStage, 0);
    EXPECT_EQ(rec.misboostDominantStage, 1);
    EXPECT_NEAR(rec.misboostDominantShare, 1.0, 1e-12);
    EXPECT_NEAR(rec.misboostBoostedShare, 0.0, 1e-12);
}

TEST(CritPathCollector, WarmupQueriesScoreIntervalsButNotProfile)
{
    CritPathCollector cp;
    cp.observeQuery(SimTime::sec(5), *singleStageQuery(1, 0, 1.0),
                    /*afterWarmup=*/false);
    cp.onControlInterval(SimTime::sec(25), {0});
    EXPECT_EQ(cp.profiledQueries(), 0u);
    EXPECT_EQ(cp.scoredIntervals(), 1u);
    EXPECT_EQ(cp.agreeIntervals(), 1u);
}

TEST(CritPathCollector, JsonCarriesSchemaProfileAndIntervals)
{
    CritPathCollector cp;
    cp.observeQuery(SimTime::sec(10), *singleStageQuery(1, 1, 2.0),
                    true);
    cp.onControlInterval(SimTime::sec(25), {1});

    const JsonValue doc = cp.toJson("unit/critpath");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("schema")->asString(), "powerchief-critpath-v1");
    EXPECT_EQ(doc.find("scenario")->asString(), "unit/critpath");
    EXPECT_DOUBLE_EQ(doc.find("queries")->asNumber(), 1.0);

    const JsonArray &stages = doc.find("stages")->asArray();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_DOUBLE_EQ(stages[0].find("stage")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(stages[0].find("share_mean")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(stages[0].find("dominant")->asNumber(), 1.0);

    const JsonArray &sigs = doc.find("signatures")->asArray();
    ASSERT_EQ(sigs.size(), 1u);
    EXPECT_EQ(sigs[0].find("signature")->asString(), "s1");

    const JsonValue *controller = doc.find("controller");
    ASSERT_NE(controller, nullptr);
    EXPECT_DOUBLE_EQ(controller->find("agree")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(controller->find("agreement_rate")->asNumber(),
                     1.0);

    const JsonArray &intervals = doc.find("intervals")->asArray();
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_TRUE(intervals[0].find("agree")->asBool());
    EXPECT_DOUBLE_EQ(intervals[0].find("interval")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(intervals[0].find("t_s")->asNumber(), 25.0);
}

// ----------------------------------------- fan-out hop recording

class CritPathFanOutTest : public testing::Test
{
  protected:
    CritPathFanOutTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 12),
          bus(&sim)
    {
    }

    std::unique_ptr<MultiStageApp>
    makeSearch(int leaves)
    {
        StageSpec leaf;
        leaf.name = "LEAF";
        leaf.initialInstances = leaves;
        leaf.initialLevel = 0;
        leaf.kind = StageKind::FanOut;
        leaf.referenceShards = leaves;
        StageSpec agg;
        agg.name = "AGG";
        agg.initialInstances = 1;
        agg.initialLevel = 0;
        auto app = std::make_unique<MultiStageApp>(
            &sim, &chip, &bus, "search",
            std::vector<StageSpec>{leaf, agg});
        app->setCompletionSink(
            [this](QueryPtr q) { done.push_back(std::move(q)); });
        return app;
    }

    QueryPtr
    makeQuery(std::int64_t id)
    {
        return std::make_shared<Query>(
            id, sim.now(),
            std::vector<WorkDemand>{{0.0, 0.4}, {0.0, 0.1}});
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    std::vector<QueryPtr> done;
};

TEST_F(CritPathFanOutTest, HopsCarryShardLinkageAndFrequency)
{
    auto app = makeSearch(3);
    app->submit(makeQuery(1));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    const auto &hops = done[0]->hops();
    ASSERT_EQ(hops.size(), 4u); // 3 shards + agg

    std::set<int> shardIndexes;
    for (const HopRecord &h : hops) {
        EXPECT_GT(h.servedMhz, 0);
        EXPECT_FALSE(h.wasted);
        if (h.stageIndex == 0) {
            EXPECT_EQ(h.shardCount, 3);
            shardIndexes.insert(h.shardIndex);
        } else {
            EXPECT_EQ(h.shardIndex, -1);
            EXPECT_EQ(h.shardCount, 0);
        }
    }
    EXPECT_EQ(shardIndexes, (std::set<int>{0, 1, 2}));

    const CritPathBreakdown bd = critPathOf(*done[0]);
    ASSERT_EQ(bd.segments.size(), 2u);
    EXPECT_EQ(bd.segments[0].shardCount, 3);
    EXPECT_EQ(bd.signature, "s0x3>s1");
}

TEST_F(CritPathFanOutTest, WithdrawReShardsSubsequentQueries)
{
    auto app = makeSearch(3);
    auto leaves = app->stage(0).instances();
    ASSERT_TRUE(app->stage(0).withdrawInstance(leaves[2]->id()));
    sim.run(); // reap

    app->submit(makeQuery(1));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    const auto &hops = done[0]->hops();
    ASSERT_EQ(hops.size(), 3u); // 2 shards + agg
    std::set<int> shardIndexes;
    for (const HopRecord &h : hops)
        if (h.stageIndex == 0) {
            EXPECT_EQ(h.shardCount, 2);
            shardIndexes.insert(h.shardIndex);
        }
    EXPECT_EQ(shardIndexes, (std::set<int>{0, 1}));
    EXPECT_EQ(critPathOf(*done[0]).signature, "s0x2>s1");
}

// ------------------------------------- crash wasted segments (e2e)

TEST(CritPathCrash, CrashProducesWastedSegmentsInDump)
{
    // Seed 4 is pinned because its crash catches the victim mid-
    // service, so the dump shows all three signals: wasted service,
    // a re-dispatch wait, and a '!' path signature.
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, 4);
    sc.duration = SimTime::sec(240);
    sc.name = "critpath/crash";
    sc.faults.active = true;
    sc.faults.seed = 9;
    CrashEvent crash;
    crash.stage = 1;
    crash.at = SimTime::sec(120);
    crash.recovery = SimTime::sec(20);
    sc.faults.crashes.push_back(crash);

    const std::string dir = testing::TempDir();
    TelemetryConfig config;
    config.critpathOut = dir + "crash.critpath.json";
    const ExperimentRunner runner;
    runner.run(sc, &config);

    const JsonParseResult doc =
        parseJson(readFile(config.critpathOut));
    ASSERT_TRUE(doc.ok()) << doc.error;
    EXPECT_EQ(doc.value->find("schema")->asString(),
              "powerchief-critpath-v1");

    double wasted = 0.0;
    double redispatch = 0.0;
    for (const JsonValue &stage : doc.value->find("stages")->asArray()) {
        wasted += stage.find("wasted_s")->asNumber();
        redispatch += stage.find("redispatch_s")->asNumber();
    }
    EXPECT_GT(wasted, 0.0);
    EXPECT_GT(redispatch, 0.0);
    bool sawWastedSignature = false;
    for (const JsonValue &sig :
         doc.value->find("signatures")->asArray())
        if (sig.find("signature")->asString().find('!') !=
            std::string::npos)
            sawWastedSignature = true;
    EXPECT_TRUE(sawWastedSignature);

    // The same scenario dumps byte-identically on a re-run.
    TelemetryConfig again = config;
    again.critpathOut = dir + "crash.critpath.rerun.json";
    runner.run(sc, &again);
    EXPECT_EQ(readFile(config.critpathOut),
              readFile(again.critpathOut));
}

// ------------------------------------------- sweep determinism

std::string
dumped(const RunResult &r)
{
    return runResultToJson(r).dump();
}

Scenario
cleanScenario(int seed)
{
    Scenario sc =
        Scenario::mitigation(WorkloadModel::nlp(), LoadLevel::Medium,
                             PolicyKind::PowerChief, seed);
    sc.duration = SimTime::sec(90);
    sc.name = "critpath-clean/" + std::to_string(seed);
    return sc;
}

Scenario
lossyScenario(int seed)
{
    Scenario sc = cleanScenario(seed);
    sc.name = "critpath-lossy/" + std::to_string(seed);
    sc.faults.active = true;
    sc.faults.seed = 18;
    BusFaultRule rule;
    rule.dropRate = 0.03;
    rule.reorderRate = 0.1;
    rule.reorderJitterMax = SimTime::msec(5);
    sc.faults.bus.push_back(rule);
    CrashEvent crash;
    crash.stage = 1;
    crash.at = SimTime::sec(60);
    crash.recovery = SimTime::sec(10);
    sc.faults.crashes.push_back(crash);
    sc.faults.telemetry.staleRate = 0.1;
    sc.faults.telemetry.truncateRate = 0.05;
    sc.faults.telemetry.perfCtlFailRate = 0.2;
    return sc;
}

TEST(CritPathSweep, SummariesIdenticalAcrossJobsCleanAndLossy)
{
    std::vector<Scenario> scenarios;
    for (int seed = 1; seed <= 2; ++seed) {
        scenarios.push_back(cleanScenario(seed));
        scenarios.push_back(lossyScenario(seed));
    }

    std::vector<std::vector<std::string>> perJobs;
    for (int jobs : {1, 3}) {
        SweepOptions opt;
        opt.jobs = jobs;
        opt.collectCritPath = true;
        SweepRunner sweep(opt);
        std::vector<std::string> dumps;
        for (const RunResult &r : sweep.runAll(scenarios)) {
            EXPECT_TRUE(r.critpath.collected);
            EXPECT_GT(r.critpath.scoredIntervals, 0u);
            dumps.push_back(dumped(r));
        }
        perJobs.push_back(std::move(dumps));
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        SCOPED_TRACE("scenario " + scenarios[i].name);
        EXPECT_EQ(perJobs[0][i], perJobs[1][i]);
    }
}

TEST(CritPathSweep, CollectFlagExtendsCacheKeyAndRoundTrips)
{
    const std::string dir =
        testing::TempDir() + "critpath_cache_test";
    std::filesystem::remove_all(dir);
    const std::vector<Scenario> scenarios = {cleanScenario(1)};

    SweepOptions with;
    with.jobs = 1;
    with.useCache = true;
    with.cacheDir = dir;
    with.collectCritPath = true;
    SweepRunner first(with);
    const RunResult fresh = first.runAll(scenarios).front();
    EXPECT_EQ(first.report().cacheMisses, 1u);
    EXPECT_TRUE(fresh.critpath.collected);

    // Same options hit the cache and round-trip the critpath block.
    SweepRunner second(with);
    const RunResult cached = second.runAll(scenarios).front();
    EXPECT_EQ(second.report().cacheHits, 1u);
    EXPECT_TRUE(cached.critpath.collected);
    EXPECT_EQ(dumped(fresh), dumped(cached));

    // Dropping the flag changes the key: no stale critpath-less hit.
    SweepOptions without = with;
    without.collectCritPath = false;
    SweepRunner third(without);
    third.runAll(scenarios);
    EXPECT_EQ(third.report().cacheHits, 0u);
    EXPECT_EQ(third.report().cacheMisses, 1u);
}

// ------------------------------------- bottleneck-efficacy ordering

TEST(CritPathEfficacy, PowerChiefAgreesMoreThanConserveOnGoldenFig11)
{
    const ExperimentRunner runner(false, SimTime::sec(5), false, false,
                                  SloConfig{}, /*collectCritPath=*/true);
    const RunResult chief =
        runner.run(Scenario::goldenFig11For(PolicyKind::PowerChief));
    const RunResult conserve = runner.run(
        Scenario::goldenFig11For(PolicyKind::PowerChiefConserve));
    ASSERT_TRUE(chief.critpath.collected);
    ASSERT_TRUE(conserve.critpath.collected);
    EXPECT_GT(chief.critpath.scoredIntervals, 0u);
    // PowerChief boosts the Eq. 1 bottleneck nearly every interval;
    // the conserving variant mostly idles, so its boosts track the
    // dominant critical-path stage far less often.
    EXPECT_GT(chief.critpath.agreementRate,
              conserve.critpath.agreementRate);
}

} // namespace
} // namespace pc
