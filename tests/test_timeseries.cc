/**
 * @file
 * Timeseries engine, SLO burn-rate tracker and anomaly alerts: ring
 * semantics and delta encoding, OpenMetrics exposition, SLO edge cases
 * (zero traffic, violation exactly at the target), EWMA detector
 * behavior, flags hardening (duplicate registration with mismatched
 * units), flush-on-fatal, and byte-identical dumps across sweep thread
 * counts on both a clean and a seeded lossy fabric.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "exp/sweep.h"
#include "obs/alerts.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"

namespace pc {
namespace {

// ------------------------------------------------------------ TsSeries

TEST(TsSeries, AppendsAndDeltaEncodes)
{
    TsSeries s("x", "watts", MetricsRegistry::SampleKind::Gauge, 8);
    for (int i = 1; i <= 4; ++i)
        s.append(SimTime::sec(i), 10.0 * i);

    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.dropped(), 0u);
    EXPECT_EQ(s.timeAt(0), SimTime::sec(1));
    EXPECT_DOUBLE_EQ(s.valueAt(3), 40.0);
    EXPECT_DOUBLE_EQ(s.last(), 40.0);

    const JsonValue doc = s.toJson();
    EXPECT_EQ(doc.find("kind")->asString(), "gauge");
    EXPECT_EQ(doc.find("unit")->asString(), "watts");
    EXPECT_DOUBLE_EQ(doc.find("n")->asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(doc.find("t0_us")->asNumber(), 1e6);
    const JsonArray &dt = doc.find("dt_us")->asArray();
    ASSERT_EQ(dt.size(), 3u);
    for (const JsonValue &d : dt)
        EXPECT_DOUBLE_EQ(d.asNumber(), 1e6);
    EXPECT_EQ(doc.find("v")->asArray().size(), 4u);
}

TEST(TsSeries, FullRingOverwritesOldestAndCountsDrops)
{
    TsSeries s("x", "", MetricsRegistry::SampleKind::Counter, 3);
    for (int i = 1; i <= 5; ++i)
        s.append(SimTime::sec(i), i);

    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.dropped(), 2u);
    // Oldest retained point is the 3rd appended one.
    EXPECT_EQ(s.timeAt(0), SimTime::sec(3));
    EXPECT_DOUBLE_EQ(s.valueAt(0), 3.0);
    EXPECT_DOUBLE_EQ(s.last(), 5.0);

    const JsonValue doc = s.toJson();
    EXPECT_DOUBLE_EQ(doc.find("dropped")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(doc.find("t0_us")->asNumber(), 3e6);
}

TEST(TsSeriesDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT(
        TsSeries("bad", "", MetricsRegistry::SampleKind::Gauge, 0),
        testing::ExitedWithCode(1), "bad");
}

// ------------------------------------------------- TimeseriesRecorder

TEST(TimeseriesRecorder, SamplesScalarsAndHistogramProjections)
{
    MetricsRegistry metrics;
    Counter &c = metrics.counter("app.completed_total");
    Gauge &g = metrics.gauge("power.headroom_watts", "watts");
    Histogram &h = metrics.histogram("latency.e2e", "seconds");

    TimeseriesRecorder rec(16);
    c.add(1.0);
    g.set(2.5);
    h.add(0.5);
    rec.sample(SimTime::sec(1), metrics);
    c.add(2.0);
    h.add(1.5);
    rec.sample(SimTime::sec(2), metrics);

    EXPECT_EQ(rec.samples(), 2u);
    const TsSeries *counter = rec.find("app.completed_total");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->kind(), MetricsRegistry::SampleKind::Counter);
    EXPECT_DOUBLE_EQ(counter->valueAt(0), 1.0);
    EXPECT_DOUBLE_EQ(counter->valueAt(1), 3.0);

    const TsSeries *gauge = rec.find("power.headroom_watts");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->unit(), "watts");

    // Histograms are sampled through count/mean projections.
    const TsSeries *count = rec.find("latency.e2e.count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->kind(), MetricsRegistry::SampleKind::Counter);
    EXPECT_DOUBLE_EQ(count->valueAt(1), 2.0);
    const TsSeries *mean = rec.find("latency.e2e.mean");
    ASSERT_NE(mean, nullptr);
    EXPECT_EQ(mean->kind(), MetricsRegistry::SampleKind::Gauge);
    EXPECT_EQ(mean->unit(), "seconds");
    EXPECT_DOUBLE_EQ(mean->valueAt(1), 1.0);
}

TEST(TimeseriesRecorder, VolatileMetricsAreNeverSampled)
{
    MetricsRegistry metrics;
    metrics.counter("wall.self_time", Volatility::Volatile).add(1.0);
    metrics.counter("stable_total").add(1.0);

    TimeseriesRecorder rec(4);
    rec.sample(SimTime::sec(1), metrics);
    EXPECT_EQ(rec.find("wall.self_time"), nullptr);
    EXPECT_NE(rec.find("stable_total"), nullptr);
}

TEST(TimeseriesRecorder, OpenMetricsExpositionIsWellFormed)
{
    MetricsRegistry metrics;
    metrics.counter("decision.freq-boost_total").add(2.0);
    metrics.gauge("power.headroom_watts", "watts").set(1.5);

    TimeseriesRecorder rec(8);
    rec.sample(SimTime::sec(1), metrics);
    rec.sample(SimTime::sec(2), metrics);

    std::ostringstream out;
    rec.writeOpenMetrics(out, "fig11");
    const std::string text = out.str();
    EXPECT_NE(text.find("# TYPE decision_freq_boost_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE power_headroom_watts gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# UNIT power_headroom_watts watts\n"),
              std::string::npos);
    EXPECT_NE(text.find("{scenario=\"fig11\"}"), std::string::npos);
    // Terminated by exactly one trailing "# EOF\n".
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsName, SanitizesToValidCharset)
{
    EXPECT_EQ(openMetricsName("decision.freq-boost_total"),
              "decision_freq_boost_total");
    EXPECT_EQ(openMetricsName("health.stage0.p95_s"),
              "health_stage0_p95_s");
    EXPECT_EQ(openMetricsName("9lives"), "_9lives");
    EXPECT_EQ(openMetricsName(""), "_");
}

// ------------------------------------------------------------ SLO

SloConfig
sloConfig(double fastWindow = 60.0, double slowWindow = 300.0,
          double objective = 0.9)
{
    SloConfig config;
    config.enabled = true;
    config.objective = objective;
    config.fastWindowSec = fastWindow;
    config.slowWindowSec = slowWindow;
    return config;
}

TEST(SloTracker, ZeroTrafficReportsZeros)
{
    SloTracker tracker(sloConfig(), 1.0);
    tracker.finish(SimTime::sec(300));
    const SloReport report = tracker.report();
    EXPECT_TRUE(report.collected);
    EXPECT_EQ(report.total, 0u);
    EXPECT_EQ(report.violations, 0u);
    EXPECT_DOUBLE_EQ(report.violationSeconds, 0.0);
    EXPECT_DOUBLE_EQ(report.fastBurn, 0.0);
    EXPECT_DOUBLE_EQ(report.slowBurn, 0.0);
    EXPECT_DOUBLE_EQ(report.maxFastBurn, 0.0);
    EXPECT_DOUBLE_EQ(report.violationRate(), 0.0);
}

TEST(SloTracker, LatencyExactlyAtTargetIsGood)
{
    SloTracker tracker(sloConfig(), 1.0);
    tracker.observe(SimTime::sec(10), 1.0); // == target: good
    tracker.finish(SimTime::sec(20));
    const SloReport report = tracker.report();
    EXPECT_EQ(report.total, 1u);
    EXPECT_EQ(report.violations, 0u);
    EXPECT_DOUBLE_EQ(report.fastBurn, 0.0);
    EXPECT_DOUBLE_EQ(report.violationSeconds, 0.0);
}

TEST(SloTracker, BurnRateIsBadFractionOverErrorBudget)
{
    // objective 0.9: a 10% bad fraction burns at exactly 1.0.
    SloTracker tracker(sloConfig(60.0, 300.0, 0.9), 1.0);
    for (int i = 1; i <= 9; ++i)
        tracker.observe(SimTime::sec(i), 0.5);
    tracker.observe(SimTime::sec(10), 2.0);
    EXPECT_DOUBLE_EQ(tracker.fastBurn(), 1.0);
    EXPECT_DOUBLE_EQ(tracker.slowBurn(), 1.0);

    const SloReport report = tracker.report();
    EXPECT_EQ(report.total, 10u);
    EXPECT_EQ(report.violations, 1u);
    EXPECT_DOUBLE_EQ(report.maxFastBurn, 1.0);
}

TEST(SloTracker, ViolationSecondsIntegrateUserPain)
{
    SloTracker tracker(sloConfig(), 1.0);
    tracker.observe(SimTime::sec(10), 2.0); // violating from t=10
    tracker.observe(SimTime::sec(25), 0.5); // recovered at t=25
    tracker.observe(SimTime::sec(40), 3.0); // violating from t=40
    tracker.finish(SimTime::sec(50));       // ... through the run end
    const SloReport report = tracker.report();
    EXPECT_DOUBLE_EQ(report.violationSeconds, 25.0);
    EXPECT_EQ(report.violations, 2u);
}

TEST(SloTracker, FastWindowEvictsOldEvents)
{
    SloTracker tracker(sloConfig(60.0, 300.0, 0.9), 1.0);
    tracker.observe(SimTime::sec(10), 5.0); // bad, but ancient
    for (int i = 0; i < 10; ++i)
        tracker.observe(SimTime::sec(100 + i), 0.5);
    // The bad event left the 60 s window; it still counts in the 300 s
    // one.
    EXPECT_DOUBLE_EQ(tracker.fastBurn(), 0.0);
    EXPECT_GT(tracker.slowBurn(), 0.0);
}

TEST(SloReportJson, RoundTrips)
{
    SloReport report;
    report.collected = true;
    report.targetSec = 0.75;
    report.objective = 0.95;
    report.total = 123;
    report.violations = 7;
    report.violationSeconds = 4.5;
    report.fastBurn = 0.25;
    report.slowBurn = 0.5;
    report.maxFastBurn = 2.0;
    report.maxSlowBurn = 1.0;

    const SloReport back = sloReportFromJson(sloReportToJson(report));
    EXPECT_TRUE(back.collected);
    EXPECT_DOUBLE_EQ(back.targetSec, report.targetSec);
    EXPECT_DOUBLE_EQ(back.objective, report.objective);
    EXPECT_EQ(back.total, report.total);
    EXPECT_EQ(back.violations, report.violations);
    EXPECT_DOUBLE_EQ(back.violationSeconds, report.violationSeconds);
    EXPECT_DOUBLE_EQ(back.fastBurn, report.fastBurn);
    EXPECT_DOUBLE_EQ(back.slowBurn, report.slowBurn);
    EXPECT_DOUBLE_EQ(back.maxFastBurn, report.maxFastBurn);
    EXPECT_DOUBLE_EQ(back.maxSlowBurn, report.maxSlowBurn);
}

TEST(SloRunner, RunnerCollectsReportWithAutoTarget)
{
    Scenario sc =
        Scenario::mitigation(WorkloadModel::nlp(), LoadLevel::Medium,
                             PolicyKind::PowerChief, 7);
    sc.duration = SimTime::sec(120);
    SloConfig config;
    config.enabled = true; // targetSec 0 = auto
    const ExperimentRunner runner(false, SimTime::sec(5), false, false,
                                  config);
    const RunResult result = runner.run(sc);
    EXPECT_TRUE(result.slo.collected);
    EXPECT_GT(result.slo.targetSec, 0.0);
    EXPECT_GT(result.slo.total, 0u);
    EXPECT_LE(result.slo.violations, result.slo.total);
}

// ------------------------------------------------------------ alerts

TEST(AlertEngine, WarmupAndSigmaFloorSuppressFiring)
{
    AlertConfig config;
    AlertEngine engine(config);
    // Constant series: zero variance stays under the sigma floor, so
    // even an absurd spike after warmup cannot produce a z-score.
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(engine.observe(SimTime::sec(i), "health.x", 1.0));
    EXPECT_FALSE(engine.observe(SimTime::sec(10), "health.x", 1.0));
    EXPECT_TRUE(engine.alerts().empty());
}

TEST(AlertEngine, SpikeFiresUpDropFiresDown)
{
    AlertConfig config;
    AuditLog audit(true);
    AlertEngine engine(config, &audit);
    // Mild noise gives the detector a real sigma...
    for (int i = 0; i < 12; ++i)
        engine.observe(SimTime::sec(i), "health.p99",
                       1.0 + 0.1 * (i % 2));
    // ...then a huge spike fires with direction +1.
    EXPECT_TRUE(engine.observe(SimTime::sec(12), "health.p99", 50.0));
    ASSERT_EQ(engine.alerts().size(), 1u);
    const Alert &alert = engine.alerts()[0];
    EXPECT_EQ(alert.series, "health.p99");
    EXPECT_EQ(alert.direction, 1);
    EXPECT_GE(alert.z, config.zThreshold);
    EXPECT_GT(alert.sigma, 0.0);

    // A fresh series dropping far below its baseline fires with -1.
    for (int i = 0; i < 12; ++i)
        engine.observe(SimTime::sec(i), "health.other",
                       100.0 + 0.5 * (i % 2));
    EXPECT_TRUE(
        engine.observe(SimTime::sec(12), "health.other", 0.0));
    ASSERT_EQ(engine.alerts().size(), 2u);
    EXPECT_EQ(engine.alerts()[1].direction, -1);

    // Both firings landed in the audit stream as obs.alert records.
    std::size_t obsAlerts = 0;
    for (const AuditRecord &rec : audit.records())
        if (rec.kind == AuditDecisionKind::ObsAlert)
            ++obsAlerts;
    EXPECT_EQ(obsAlerts, 2u);
    EXPECT_EQ(engine.toJson().asArray().size(), 2u);
}

TEST(AlertEngine, WatchesHealthTapsAndHeadroomOnly)
{
    EXPECT_TRUE(AlertEngine::watches("health.e2e_p99_s"));
    EXPECT_TRUE(AlertEngine::watches("health.stage2.p95_s"));
    EXPECT_TRUE(AlertEngine::watches("power.headroom_watts"));
    EXPECT_FALSE(AlertEngine::watches("app.completed_total"));
    EXPECT_FALSE(AlertEngine::watches("power.consumed_watts"));
}

// ------------------------------------------------- flags hardening

TEST(MetricsUnitsDeath, DuplicateRegistrationWithMismatchedUnitIsFatal)
{
    MetricsRegistry metrics;
    metrics.gauge("power.headroom_watts", "watts");
    EXPECT_EXIT(metrics.gauge("power.headroom_watts", "seconds"),
                testing::ExitedWithCode(1), "power.headroom_watts");
}

TEST(MetricsUnits, LaterUnitUpgradesUnitlessRegistration)
{
    MetricsRegistry metrics;
    metrics.counter("rpc.retries_total");
    EXPECT_EQ(metrics.unitOf("rpc.retries_total"), "");
    metrics.counter("rpc.retries_total", "retries");
    EXPECT_EQ(metrics.unitOf("rpc.retries_total"), "retries");
    // Same unit again is fine.
    metrics.counter("rpc.retries_total", "retries");
}

TEST(TelemetryFlagsDeath, NonPositiveMetricsIntervalIsFatal)
{
    FlagSet flags("test");
    addTelemetryFlags(&flags);
    const char *argv[] = {"test", "--metrics-interval=0"};
    ASSERT_TRUE(flags.parse(2, argv));
    EXPECT_EXIT(telemetryConfigFromFlags(flags),
                testing::ExitedWithCode(1), "metrics-interval");
}

// ------------------------------------------------- flush-on-fatal

TEST(FatalFlushDeath, HooksRunBeforeExit)
{
    const std::string path =
        testing::TempDir() + "/pc_fatal_flush_probe";
    std::filesystem::remove(path);
    EXPECT_EXIT(
        {
            FatalFlushGuard guard([&path]() {
                std::ofstream out(path);
                out << "flushed\n";
            });
            fatal("deliberate fatal");
        },
        testing::ExitedWithCode(1), "deliberate fatal");
    // The death-test child shares the filesystem: the hook's output
    // must exist even though the run aborted.
    std::ifstream in(path);
    std::string word;
    in >> word;
    EXPECT_EQ(word, "flushed");
    std::filesystem::remove(path);
}

TEST(FatalFlush, DestroyedGuardNeverFires)
{
    bool fired = false;
    {
        FatalFlushGuard guard([&fired]() { fired = true; });
    }
    FatalFlushGuard::runAll();
    EXPECT_FALSE(fired);
}

// ------------------------------------ determinism across --jobs

Scenario
tsScenario(int seed, bool lossy)
{
    Scenario sc =
        Scenario::mitigation(WorkloadModel::sirius(), LoadLevel::High,
                             PolicyKind::PowerChief, seed);
    sc.duration = SimTime::sec(120);
    sc.name = std::string("ts") + (lossy ? "-lossy" : "") + "/" +
        std::to_string(seed);
    if (lossy) {
        // The arena's lossy fabric: drops, reordering, stale and
        // truncated wire telemetry, dropped PERF_CTL writes.
        sc.faults.active = true;
        sc.faults.seed = 18;
        BusFaultRule bus;
        bus.dropRate = 0.03;
        bus.reorderRate = 0.1;
        bus.reorderJitterMax = SimTime::msec(5);
        sc.faults.bus.push_back(bus);
        sc.faults.telemetry.staleRate = 0.1;
        sc.faults.telemetry.truncateRate = 0.05;
        sc.faults.telemetry.perfCtlFailRate = 0.2;
        sc.wireReports = true;
        sc.control.staleWindow = SimTime::sec(60);
    }
    return sc;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Run a 3-scenario sweep with timeseries + alerts + SLO enabled at
 * @p jobs workers and return every per-scenario dump's bytes
 * (timeseries then audit, in scenario order).
 */
std::vector<std::string>
sweepDumps(int jobs, bool lossy, const std::string &dir)
{
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SweepOptions options;
    options.jobs = jobs;
    options.slo.enabled = true;
    options.telemetry.timeseriesOut = dir + "/ts.json";
    options.telemetry.auditOut = dir + "/audit.json";
    options.telemetry.alertsEnabled = true;
    SweepRunner runner(options);
    std::vector<Scenario> scenarios;
    for (int seed = 1; seed <= 3; ++seed)
        scenarios.push_back(tsScenario(seed, lossy));
    const std::vector<RunResult> results = runner.runAll(scenarios);
    EXPECT_EQ(results.size(), 3u);
    std::vector<std::string> dumps;
    for (const Scenario &sc : scenarios) {
        const std::string tag = lossy
            ? "ts-lossy-" + sc.name.substr(sc.name.find('/') + 1)
            : "ts-" + sc.name.substr(sc.name.find('/') + 1);
        dumps.push_back(slurp(dir + "/ts." + tag + ".json"));
        dumps.push_back(slurp(dir + "/audit." + tag + ".json"));
    }
    return dumps;
}

TEST(TimeseriesDeterminism, DumpsByteIdenticalAcrossJobsClean)
{
    const std::string base = testing::TempDir() + "pc_ts_clean_";
    const std::vector<std::string> serial =
        sweepDumps(1, false, base + "j1");
    const std::vector<std::string> parallel =
        sweepDumps(3, false, base + "j3");
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], parallel[i]) << "dump " << i;
    }
    // The dump is a real timeseries document with health taps and the
    // SLO report embedded.
    EXPECT_NE(serial[0].find("\"health.e2e_p99_s\""),
              std::string::npos);
    EXPECT_NE(serial[0].find("\"slo\""), std::string::npos);
    EXPECT_NE(serial[0].find("\"alerts\""), std::string::npos);
}

TEST(TimeseriesDeterminism, DumpsByteIdenticalAcrossJobsLossy)
{
    const std::string base = testing::TempDir() + "pc_ts_lossy_";
    const std::vector<std::string> serial =
        sweepDumps(1, true, base + "j1");
    const std::vector<std::string> parallel =
        sweepDumps(3, true, base + "j3");
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], parallel[i]) << "dump " << i;
    }
    // The lossy fabric exercises the fault-rate health tap.
    EXPECT_NE(serial[0].find("\"health.fault_rate\""),
              std::string::npos);
}

} // namespace
} // namespace pc
