/** @file Tests for fan-out/fan-in stages (Web Search leaves). */

#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "workloads/loadgen.h"

namespace pc {
namespace {

class FanOutTest : public testing::Test
{
  protected:
    FanOutTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 12),
          bus(&sim)
    {
    }

    /** Build LEAF(fan-out, n leaves) -> AGG app; no shard jitter. */
    std::unique_ptr<MultiStageApp>
    makeSearch(int leaves, double shardCv = 0.0)
    {
        StageSpec leaf;
        leaf.name = "LEAF";
        leaf.initialInstances = leaves;
        leaf.initialLevel = 0;
        leaf.kind = StageKind::FanOut;
        leaf.referenceShards = leaves;
        leaf.shardCv = shardCv;
        StageSpec agg;
        agg.name = "AGG";
        agg.initialInstances = 1;
        agg.initialLevel = 0;
        auto app = std::make_unique<MultiStageApp>(
            &sim, &chip, &bus, "search",
            std::vector<StageSpec>{leaf, agg});
        app->setCompletionSink(
            [this](QueryPtr q) { done.push_back(std::move(q)); });
        return app;
    }

    QueryPtr
    makeQuery(std::int64_t id, double leafCpuRef, double leafMem,
              double aggMem = 0.0)
    {
        return std::make_shared<Query>(
            id, sim.now(),
            std::vector<WorkDemand>{{leafCpuRef, leafMem},
                                    {0.0, aggMem}});
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    std::vector<QueryPtr> done;
};

TEST_F(FanOutTest, ShardsToEveryLiveInstance)
{
    auto app = makeSearch(4);
    app->submit(makeQuery(1, 0.0, 0.5));
    // One shard per leaf, all in service simultaneously.
    for (auto *inst : app->stage(0).instances())
        EXPECT_EQ(inst->queueLength(), 1u);
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    // 4 leaf hops + 1 aggregation hop.
    EXPECT_EQ(done[0]->hops().size(), 5u);
}

TEST_F(FanOutTest, CompletesWhenSlowestShardReturns)
{
    auto app = makeSearch(2);
    // Slow down one leaf: service = cpuRef * (1200/f); leaf A at 1.2
    // takes 1.2 s, leaf B at 2.4 takes 0.6 s.
    auto leaves = app->stage(0).instances();
    chip.core(leaves[1]->coreId()).setLevel(12);
    app->submit(makeQuery(1, 1.2, 0.0));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_NEAR(done[0]->endToEnd().toSec(), 1.2, 1e-5);
}

TEST_F(FanOutTest, AggregationRunsOncePerQuery)
{
    auto app = makeSearch(4);
    app->submit(makeQuery(1, 0.0, 0.2, /*aggMem=*/0.1));
    sim.run();
    EXPECT_EQ(app->stage(1).instances()[0]->queriesServed(), 1u);
    EXPECT_NEAR(done[0]->endToEnd().toSec(), 0.3, 1e-5);
}

TEST_F(FanOutTest, ShardWorkScalesWithLeafCount)
{
    // 2 leaves at reference 2: scale 1.0 -> serving 0.5 s each.
    auto app = makeSearch(2);
    app->submit(makeQuery(1, 0.0, 0.5));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_NEAR(done[0]->hops()[0].serving().toSec(), 0.5, 1e-5);

    // Launch two more leaves: scale 2/4 -> serving 0.25 s each.
    app->stage(0).launchInstance(0);
    app->stage(0).launchInstance(0);
    done.clear();
    app->submit(makeQuery(2, 0.0, 0.5));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().size(), 5u); // 4 shards + agg
    EXPECT_NEAR(done[0]->hops()[0].serving().toSec(), 0.25, 1e-5);
}

TEST_F(FanOutTest, WithdrawnLeafShardRedirects)
{
    auto app = makeSearch(3);
    auto leaves = app->stage(0).instances();
    // Occupy all leaves with a long query, then submit another whose
    // shards queue up; withdrawing a leaf must move its queued shard.
    app->submit(makeQuery(1, 6.0, 0.0));
    app->submit(makeQuery(2, 6.0, 0.0));
    EXPECT_EQ(leaves[2]->queueLength(), 2u);
    ASSERT_TRUE(app->stage(0).withdrawInstance(leaves[2]->id(),
                                               leaves[0]));
    EXPECT_EQ(leaves[0]->waitingCount(), 2u); // own shard + redirected
    sim.run();
    // Both queries complete with full shard trails (3 + agg each).
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0]->hops().size(), 4u);
    EXPECT_EQ(done[1]->hops().size(), 4u);
}

TEST_F(FanOutTest, NewQueriesAfterWithdrawFanNarrower)
{
    auto app = makeSearch(3);
    auto leaves = app->stage(0).instances();
    ASSERT_TRUE(app->stage(0).withdrawInstance(leaves[2]->id()));
    sim.run(); // reap
    app->submit(makeQuery(1, 0.0, 0.4));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().size(), 3u); // 2 shards + agg
    // Re-sharding: per-leaf work grew by 3/2.
    EXPECT_NEAR(done[0]->hops()[0].serving().toSec(), 0.6, 1e-5);
}

TEST_F(FanOutTest, ShardJitterIsDeterministicPerSeed)
{
    auto run = [&](std::vector<double> *served) {
        Simulator localSim;
        CmpChip localChip(&localSim, &model, 12);
        MessageBus localBus(&localSim);
        StageSpec leaf;
        leaf.name = "LEAF";
        leaf.initialInstances = 3;
        leaf.initialLevel = 0;
        leaf.kind = StageKind::FanOut;
        leaf.shardCv = 0.5;
        MultiStageApp app(&localSim, &localChip, &localBus, "s",
                          {leaf});
        app.setCompletionSink([&](QueryPtr q) {
            for (const auto &hop : q->hops())
                served->push_back(hop.serving().toSec());
        });
        app.submit(std::make_shared<Query>(
            1, localSim.now(),
            std::vector<WorkDemand>{{0.0, 0.5}}));
        localSim.run();
    };
    std::vector<double> a;
    std::vector<double> b;
    run(&a);
    run(&b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b);
    // Jitter actually varies the shards.
    EXPECT_NE(a[0], a[1]);
}

TEST_F(FanOutTest, SingleLeafDegeneratesToPipeline)
{
    auto app = makeSearch(1);
    app->submit(makeQuery(1, 0.0, 0.5));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().size(), 2u);
    EXPECT_NEAR(done[0]->endToEnd().toSec(), 0.5, 1e-5);
}

TEST_F(FanOutTest, WebSearchModelEndToEnd)
{
    const auto search = WorkloadModel::webSearch();
    auto app = std::make_unique<MultiStageApp>(
        &sim, &chip, &bus, "ws",
        search.layout({10, 1}, model.ladder().maxLevel()));
    std::uint64_t completions = 0;
    app->setCompletionSink([&](const QueryPtr &q) {
        ++completions;
        EXPECT_EQ(q->hops().size(), 11u);
    });
    LoadGenerator gen(&sim, app.get(), &search,
                      LoadProfile::constant(20.0), 5,
                      model.ladder().freqAt(0).value());
    gen.start(SimTime::sec(60));
    sim.runUntil(SimTime::sec(62));
    EXPECT_GT(completions, 1000u);
}

TEST(FanOutDeath, ConfigureOnPipelineStagePanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    Stage stage(0, "S", &sim, &chip);
    EXPECT_DEATH(stage.configureFanOut(4, 0.0, 1), "not a fan-out");
}

TEST(FanOutDeath, BadReferenceShardsIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    Stage stage(0, "S", &sim, &chip,
                DispatchPolicy::JoinShortestQueue, StageKind::FanOut);
    EXPECT_EXIT(stage.configureFanOut(0, 0.0, 1),
                testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace pc
