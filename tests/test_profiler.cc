/** @file Unit tests for the offline frequency/speedup profiler. */

#include <gtest/gtest.h>

#include "workloads/profiler.h"

namespace pc {
namespace {

class ProfilerTest : public testing::Test
{
  protected:
    const PowerModel model = PowerModel::haswell();
};

TEST_F(ProfilerTest, TableCoversLadderAndStartsAtOne)
{
    const StageProfile stage{"X", 0.5, 0.3, 0.8, 1800};
    const auto table =
        OfflineProfiler(100).profileStage(stage, model, 5);
    EXPECT_EQ(table.numLevels(), 13);
    EXPECT_DOUBLE_EQ(table.at(0), 1.0);
}

TEST_F(ProfilerTest, NormalizedTimesNonIncreasing)
{
    const StageProfile stage{"X", 0.5, 0.3, 0.8, 1800};
    const auto table =
        OfflineProfiler(100).profileStage(stage, model, 5);
    for (int lvl = 1; lvl < table.numLevels(); ++lvl)
        EXPECT_LE(table.at(lvl), table.at(lvl - 1));
}

TEST_F(ProfilerTest, MatchesAnalyticFrequencyScaling)
{
    // For compute fraction c (quoted at 1.2 GHz via the sample), the
    // normalized time is r(f) = mem + cpu*1200/f over mem + cpu.
    const StageProfile stage{"X", 1.0, 0.2, 0.75, 1800};
    const auto table =
        OfflineProfiler(400).profileStage(stage, model, 9);
    // Re-derive the expectation at 2.4 GHz: at the 1.2 GHz reference,
    // cpu share is 0.75*1.5 / (0.75*1.5 + 0.25) of the service time.
    const double cpuRef = 0.75 * 1.5;
    const double mem = 0.25;
    const double expect = (mem + cpuRef * 0.5) / (mem + cpuRef);
    EXPECT_NEAR(table.at(12), expect, 0.01);
}

TEST_F(ProfilerTest, MemoryBoundServiceBarelySpeedsUp)
{
    const StageProfile stage{"MEM", 0.5, 0.3, 0.05, 1800};
    const auto table =
        OfflineProfiler(200).profileStage(stage, model, 5);
    EXPECT_GT(table.at(12), 0.90);
}

TEST_F(ProfilerTest, ComputeBoundServiceScalesLinearly)
{
    const StageProfile stage{"CPU", 0.5, 0.3, 1.0, 1800};
    const auto table =
        OfflineProfiler(200).profileStage(stage, model, 5);
    EXPECT_NEAR(table.at(12), 0.5, 0.01); // 1200/2400
    EXPECT_NEAR(table.at(6), 1200.0 / 1800.0, 0.01);
}

TEST_F(ProfilerTest, DeterministicForSeed)
{
    const StageProfile stage{"X", 0.5, 0.5, 0.8, 1800};
    const auto a = OfflineProfiler(100).profileStage(stage, model, 21);
    const auto b = OfflineProfiler(100).profileStage(stage, model, 21);
    for (int lvl = 0; lvl < a.numLevels(); ++lvl)
        EXPECT_DOUBLE_EQ(a.at(lvl), b.at(lvl));
}

TEST_F(ProfilerTest, WorkloadBookHasAllStages)
{
    const auto book = OfflineProfiler(50).profileWorkload(
        WorkloadModel::sirius(), model, 5);
    EXPECT_EQ(book.numStages(), 3);
    for (int s = 0; s < 3; ++s)
        EXPECT_TRUE(book.stage(s).valid());
}

TEST_F(ProfilerTest, StagesDifferInSensitivity)
{
    // Sirius QA (compute-bound) must gain more from frequency than IMM
    // (memory-heavy): smaller normalized time at the top level.
    const auto book = OfflineProfiler(200).profileWorkload(
        WorkloadModel::sirius(), model, 5);
    EXPECT_LT(book.stage(2).at(12), book.stage(1).at(12));
}

TEST_F(ProfilerTest, WorkloadBookIsMemoized)
{
    OfflineProfiler::clearProfileCache();
    const auto hits0 = OfflineProfiler::profileCacheHits();
    const auto a = OfflineProfiler(60).profileWorkload(
        WorkloadModel::sirius(), model, 77);
    EXPECT_EQ(OfflineProfiler::profileCacheHits(), hits0);
    const auto b = OfflineProfiler(60).profileWorkload(
        WorkloadModel::sirius(), model, 77);
    EXPECT_EQ(OfflineProfiler::profileCacheHits(), hits0 + 1);
    for (int s = 0; s < a.numStages(); ++s)
        for (int lvl = 0; lvl < a.stage(s).numLevels(); ++lvl)
            EXPECT_DOUBLE_EQ(a.stage(s).at(lvl), b.stage(s).at(lvl));
}

TEST_F(ProfilerTest, MemoizedBookIsBitIdenticalToRecomputed)
{
    // The cache must be a pure memo: a cold recompute after clearing
    // yields the exact same tables a warm hit returned.
    OfflineProfiler::clearProfileCache();
    const auto warmSource = OfflineProfiler(60).profileWorkload(
        WorkloadModel::sirius(), model, 31);
    const auto cached = OfflineProfiler(60).profileWorkload(
        WorkloadModel::sirius(), model, 31);
    OfflineProfiler::clearProfileCache();
    const auto recomputed = OfflineProfiler(60).profileWorkload(
        WorkloadModel::sirius(), model, 31);
    for (int s = 0; s < cached.numStages(); ++s)
        for (int lvl = 0; lvl < cached.stage(s).numLevels(); ++lvl) {
            EXPECT_DOUBLE_EQ(cached.stage(s).at(lvl),
                             warmSource.stage(s).at(lvl));
            EXPECT_DOUBLE_EQ(cached.stage(s).at(lvl),
                             recomputed.stage(s).at(lvl));
        }
}

TEST_F(ProfilerTest, CacheKeyDistinguishesSeedAndBatch)
{
    OfflineProfiler::clearProfileCache();
    const auto hits0 = OfflineProfiler::profileCacheHits();
    OfflineProfiler(60).profileWorkload(WorkloadModel::sirius(), model,
                                        1);
    OfflineProfiler(60).profileWorkload(WorkloadModel::sirius(), model,
                                        2);
    OfflineProfiler(80).profileWorkload(WorkloadModel::sirius(), model,
                                        1);
    // Three distinct keys: no hit recorded.
    EXPECT_EQ(OfflineProfiler::profileCacheHits(), hits0);
}

TEST(ProfilerDeath, NonPositiveBatchIsFatal)
{
    EXPECT_EXIT(OfflineProfiler(0), testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace pc
