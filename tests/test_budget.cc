/** @file Unit tests for PowerBudget accounting. */

#include <gtest/gtest.h>

#include "power/budget.h"

namespace pc {
namespace {

class BudgetTest : public testing::Test
{
  protected:
    BudgetTest() : model(PowerModel::haswell()), budget(Watts(13.56), &model)
    {
    }

    PowerModel model;
    PowerBudget budget;
};

TEST_F(BudgetTest, StartsEmpty)
{
    EXPECT_DOUBLE_EQ(budget.allocated().value(), 0.0);
    EXPECT_DOUBLE_EQ(budget.headroom().value(), 13.56);
    EXPECT_EQ(budget.numConsumers(), 0u);
}

TEST_F(BudgetTest, AllocateReservesModelPower)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    EXPECT_NEAR(budget.allocated().value(), 4.52, 1e-3);
    EXPECT_EQ(budget.levelOf(1), 6);
    EXPECT_EQ(budget.numConsumers(), 1u);
}

TEST_F(BudgetTest, ThreeMidInstancesExactlyFit)
{
    EXPECT_TRUE(budget.allocate(1, 6));
    EXPECT_TRUE(budget.allocate(2, 6));
    EXPECT_TRUE(budget.allocate(3, 6));
    EXPECT_NEAR(budget.headroom().value(), 0.0, 1e-3);
    // A fourth instance at any level no longer fits.
    EXPECT_FALSE(budget.allocate(4, 0));
}

TEST_F(BudgetTest, RejectedAllocationLeavesStateUntouched)
{
    ASSERT_TRUE(budget.allocate(1, 12));
    const double before = budget.allocated().value();
    EXPECT_FALSE(budget.allocate(2, 12));
    EXPECT_DOUBLE_EQ(budget.allocated().value(), before);
    EXPECT_EQ(budget.levelOf(2), -1);
}

TEST_F(BudgetTest, UpdateLevelUp)
{
    ASSERT_TRUE(budget.allocate(1, 0));
    ASSERT_TRUE(budget.updateLevel(1, 6));
    EXPECT_EQ(budget.levelOf(1), 6);
    EXPECT_NEAR(budget.allocated().value(), 4.52, 1e-3);
}

TEST_F(BudgetTest, UpdateLevelDownAlwaysSucceeds)
{
    ASSERT_TRUE(budget.allocate(1, 12));
    EXPECT_TRUE(budget.updateLevel(1, 0));
    EXPECT_NEAR(budget.allocated().value(),
                model.activeWatts(0).value(), 1e-9);
}

TEST_F(BudgetTest, UpdateLevelUpRejectedWhenOverCap)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    ASSERT_TRUE(budget.allocate(2, 6));
    ASSERT_TRUE(budget.allocate(3, 6));
    EXPECT_FALSE(budget.updateLevel(1, 7));
    EXPECT_EQ(budget.levelOf(1), 6);
}

TEST_F(BudgetTest, ReleaseReturnsPower)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    ASSERT_TRUE(budget.allocate(2, 6));
    budget.release(1);
    EXPECT_EQ(budget.levelOf(1), -1);
    EXPECT_NEAR(budget.allocated().value(), 4.52, 1e-3);
    EXPECT_EQ(budget.numConsumers(), 1u);
}

TEST_F(BudgetTest, CanAffordRespectsCap)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    EXPECT_TRUE(budget.canAfford(Watts(9.0)));
    EXPECT_FALSE(budget.canAfford(Watts(9.1)));
}

TEST_F(BudgetTest, AllocationsSumExactly)
{
    // Property: allocated == sum of per-consumer model power after any
    // sequence of operations.
    ASSERT_TRUE(budget.allocate(1, 0));
    ASSERT_TRUE(budget.allocate(2, 3));
    ASSERT_TRUE(budget.allocate(3, 5));
    ASSERT_TRUE(budget.updateLevel(2, 1));
    budget.release(3);
    const double expect = model.activeWatts(0).value() +
        model.activeWatts(1).value();
    EXPECT_NEAR(budget.allocated().value(), expect, 1e-9);
}

TEST_F(BudgetTest, ReuseIdAfterRelease)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    budget.release(1);
    EXPECT_TRUE(budget.allocate(1, 3));
    EXPECT_EQ(budget.levelOf(1), 3);
}

TEST(BudgetDeath, DoubleAllocatePanics)
{
    const PowerModel model = PowerModel::haswell();
    PowerBudget budget(Watts(100.0), &model);
    ASSERT_TRUE(budget.allocate(1, 0));
    EXPECT_DEATH((void)budget.allocate(1, 0), "already allocated");
}

TEST(BudgetDeath, ReleaseUnknownPanics)
{
    const PowerModel model = PowerModel::haswell();
    PowerBudget budget(Watts(100.0), &model);
    EXPECT_DEATH(budget.release(42), "unknown");
}

TEST(BudgetDeath, UpdateUnknownPanics)
{
    const PowerModel model = PowerModel::haswell();
    PowerBudget budget(Watts(100.0), &model);
    EXPECT_DEATH((void)budget.updateLevel(42, 3), "unknown");
}

// ----------------------------------------- cluster retarget ratchet

TEST_F(BudgetTest, RetargetUpRaisesTheCapImmediately)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    budget.setTargetCap(Watts(20.0));
    EXPECT_DOUBLE_EQ(budget.targetCap().value(), 20.0);
    EXPECT_DOUBLE_EQ(budget.effectiveCap().value(), 20.0);
    EXPECT_NEAR(budget.headroom().value(), 20.0 - 4.52, 1e-3);
}

TEST_F(BudgetTest, RetargetBelowDrawRatchetsDownViaReleases)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    ASSERT_TRUE(budget.allocate(2, 6));
    const double draw = budget.allocated().value(); // ~9.04 W

    // Retarget below the current draw: existing reservations are
    // honored — the effective cap tracks the draw, not the target —
    // but no new watts can be committed.
    budget.setTargetCap(Watts(5.0));
    EXPECT_DOUBLE_EQ(budget.targetCap().value(), 5.0);
    EXPECT_NEAR(budget.effectiveCap().value(), draw, 1e-9);
    EXPECT_FALSE(budget.canAfford(Watts(0.1)));
    EXPECT_FALSE(budget.allocate(3, 0));
    EXPECT_FALSE(budget.updateLevel(1, 7));

    // Releasing a consumer ratchets the effective cap toward the
    // target; the freed watts are NOT re-spendable while still above.
    budget.release(2);
    EXPECT_NEAR(budget.effectiveCap().value(), 5.0, 1e-3);
    EXPECT_TRUE(budget.canAfford(Watts(0.4)));
}

TEST_F(BudgetTest, RetargetRoundTripRestoresHeadroom)
{
    ASSERT_TRUE(budget.allocate(1, 6));
    budget.setTargetCap(Watts(2.0));
    EXPECT_FALSE(budget.canAfford(Watts(0.1)));
    budget.setTargetCap(Watts(13.56));
    EXPECT_DOUBLE_EQ(budget.effectiveCap().value(), 13.56);
    EXPECT_TRUE(budget.allocate(2, 6));
}

TEST(BudgetDeath, NonPositiveRetargetIsFatal)
{
    const PowerModel model = PowerModel::haswell();
    PowerBudget budget(Watts(10.0), &model);
    EXPECT_EXIT(budget.setTargetCap(Watts(0.0)),
                testing::ExitedWithCode(1), "target");
}

TEST(BudgetDeath, NonPositiveCapIsFatal)
{
    const PowerModel model = PowerModel::haswell();
    EXPECT_EXIT(PowerBudget(Watts(0.0), &model),
                testing::ExitedWithCode(1), "budget");
}

TEST(BudgetDeath, NullModelIsFatal)
{
    EXPECT_EXIT(PowerBudget(Watts(1.0), nullptr),
                testing::ExitedWithCode(1), "model");
}

} // namespace
} // namespace pc
