/** @file Unit tests for workload profiles and load generation. */

#include <gtest/gtest.h>

#include "workloads/loadgen.h"
#include "workloads/profiles.h"

namespace pc {
namespace {

// ----------------------------------------------------------- profiles

TEST(StageProfile, ExpectedServiceTimeAtProfiledPoint)
{
    StageProfile p{"X", 1.0, 0.3, 0.8, 1800};
    EXPECT_DOUBLE_EQ(p.expectedServiceSecAt(1800), 1.0);
}

TEST(StageProfile, ExpectedServiceScalesComputePart)
{
    StageProfile p{"X", 1.0, 0.3, 0.8, 1800};
    // mem 0.2 + cpu 0.8 * 1800/2400.
    EXPECT_DOUBLE_EQ(p.expectedServiceSecAt(2400), 0.2 + 0.6);
    EXPECT_DOUBLE_EQ(p.expectedServiceSecAt(1200), 0.2 + 1.2);
}

TEST(StageProfile, SampleMeanMatchesProfile)
{
    StageProfile p{"X", 0.5, 0.4, 0.7, 1800};
    Rng rng(17);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        sum += p.sample(rng, 1200).serviceSec(1800, 1200);
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(StageProfile, SampleSplitsComputeFraction)
{
    StageProfile p{"X", 1.0, 0.3, 0.75, 1800};
    Rng rng(19);
    const WorkDemand d = p.sample(rng, 1200);
    const double total = d.serviceSec(1800, 1200);
    EXPECT_NEAR(d.memSec / total, 0.25, 1e-9);
}

TEST(WorkloadModel, SiriusShape)
{
    const auto sirius = WorkloadModel::sirius();
    EXPECT_EQ(sirius.name(), "sirius");
    ASSERT_EQ(sirius.numStages(), 3);
    EXPECT_EQ(sirius.stage(0).name, "ASR");
    EXPECT_EQ(sirius.stage(1).name, "IMM");
    EXPECT_EQ(sirius.stage(2).name, "QA");
    // QA dominates (paper: the bottleneck stage).
    EXPECT_GT(sirius.stage(2).meanServiceSec,
              sirius.stage(0).meanServiceSec);
    EXPECT_GT(sirius.stage(2).meanServiceSec,
              sirius.stage(1).meanServiceSec);
}

TEST(WorkloadModel, NlpShape)
{
    const auto nlp = WorkloadModel::nlp();
    ASSERT_EQ(nlp.numStages(), 3);
    EXPECT_EQ(nlp.stage(0).name, "POS");
    EXPECT_EQ(nlp.stage(2).name, "SRL");
    EXPECT_GT(nlp.stage(2).meanServiceSec, nlp.stage(1).meanServiceSec);
}

TEST(WorkloadModel, WebSearchShape)
{
    const auto ws = WorkloadModel::webSearch();
    ASSERT_EQ(ws.numStages(), 2);
    EXPECT_EQ(ws.stage(0).name, "LEAF");
    EXPECT_EQ(ws.stage(1).name, "AGG");
}

TEST(WorkloadModel, BottleneckCapacityIsSlowestStage)
{
    const auto sirius = WorkloadModel::sirius();
    const double qa = sirius.stage(2).expectedServiceSecAt(1800);
    EXPECT_NEAR(sirius.bottleneckCapacityAt(1800), 1.0 / qa, 1e-9);
}

TEST(WorkloadModel, SampleDemandsOnePerStage)
{
    const auto sirius = WorkloadModel::sirius();
    Rng rng(3);
    const auto demands = sirius.sampleDemands(rng, 1200);
    EXPECT_EQ(demands.size(), 3u);
    for (const auto &d : demands)
        EXPECT_GT(d.serviceSec(1800, 1200), 0.0);
}

TEST(WorkloadModel, UniformLayout)
{
    const auto sirius = WorkloadModel::sirius();
    const auto specs = sirius.layout(2, 6);
    ASSERT_EQ(specs.size(), 3u);
    for (const auto &s : specs) {
        EXPECT_EQ(s.initialInstances, 2);
        EXPECT_EQ(s.initialLevel, 6);
    }
    EXPECT_EQ(specs[2].name, "QA");
}

TEST(WorkloadModel, ExplicitLayoutCounts)
{
    const auto ws = WorkloadModel::webSearch();
    const auto specs = ws.layout({10, 1}, 12);
    EXPECT_EQ(specs[0].initialInstances, 10);
    EXPECT_EQ(specs[1].initialInstances, 1);
}

TEST(WorkloadModelDeath, LayoutCountMismatchIsFatal)
{
    const auto sirius = WorkloadModel::sirius();
    EXPECT_EXIT(sirius.layout({1, 2}, 0), testing::ExitedWithCode(1),
                "do not match");
}

// ---------------------------------------------------------- LoadProfile

TEST(LoadProfile, ConstantRate)
{
    const auto p = LoadProfile::constant(2.5);
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::zero()), 2.5);
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::sec(1e6)), 2.5);
    EXPECT_DOUBLE_EQ(p.maxRate(), 2.5);
}

TEST(LoadProfile, PiecewiseInterpolation)
{
    const auto p = LoadProfile::piecewise({
        {SimTime::sec(10), 1.0},
        {SimTime::sec(20), 3.0},
    });
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::sec(0)), 1.0);  // clamp left
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::sec(15)), 2.0); // midpoint
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::sec(20)), 3.0);
    EXPECT_DOUBLE_EQ(p.rateAt(SimTime::sec(99)), 3.0); // clamp right
    EXPECT_DOUBLE_EQ(p.maxRate(), 3.0);
}

TEST(LoadProfile, LevelFractions)
{
    EXPECT_DOUBLE_EQ(LoadProfile::levelFraction(LoadLevel::Low), 0.35);
    EXPECT_GT(LoadProfile::levelFraction(LoadLevel::Medium), 1.0);
    EXPECT_GT(LoadProfile::levelFraction(LoadLevel::High),
              LoadProfile::levelFraction(LoadLevel::Medium));
}

TEST(LoadProfile, ForLevelScalesToCapacity)
{
    const auto sirius = WorkloadModel::sirius();
    const auto p =
        LoadProfile::forLevel(sirius, LoadLevel::Low, 1800);
    EXPECT_NEAR(p.rateAt(SimTime::zero()),
                0.35 * sirius.bottleneckCapacityAt(1800), 1e-9);
}

TEST(LoadProfile, DiurnalOscillatesBetweenBounds)
{
    const auto p = LoadProfile::diurnal(1.0, 3.0, SimTime::sec(100));
    EXPECT_NEAR(p.rateAt(SimTime::zero()), 1.0, 1e-9);
    EXPECT_NEAR(p.rateAt(SimTime::sec(50)), 3.0, 1e-9);
    EXPECT_NEAR(p.rateAt(SimTime::sec(100)), 1.0, 1e-9);
    EXPECT_NEAR(p.rateAt(SimTime::sec(25)), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(p.maxRate(), 3.0);
}

TEST(LoadProfile, Fig11HasLowValley)
{
    const auto sirius = WorkloadModel::sirius();
    const auto p = LoadProfile::fig11(sirius, 1800);
    const double cap = sirius.bottleneckCapacityAt(1800);
    EXPECT_GT(p.rateAt(SimTime::sec(100)), cap);       // opening burst
    EXPECT_NEAR(p.rateAt(SimTime::sec(225)), 0.3 * cap, 1e-9);
    EXPECT_GT(p.rateAt(SimTime::sec(500)), 0.9 * cap); // second rise
}

TEST(LoadProfileDeath, BadInputsAreFatal)
{
    EXPECT_EXIT(LoadProfile::constant(0.0), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(LoadProfile::piecewise({}), testing::ExitedWithCode(1),
                "at least one");
    EXPECT_EXIT(LoadProfile::piecewise({{SimTime::sec(2), 1.0},
                                        {SimTime::sec(1), 1.0}}),
                testing::ExitedWithCode(1), "increasing");
    EXPECT_EXIT(LoadProfile::diurnal(2.0, 1.0, SimTime::sec(10)),
                testing::ExitedWithCode(1), "lo <= hi");
}

// --------------------------------------------------------- LoadGenerator

class LoadGenTest : public testing::Test
{
  protected:
    LoadGenTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 4), bus(&sim)
    {
        // A fast single-stage app so queries drain immediately.
        std::vector<StageSpec> specs = {
            {"S", 1, 12, DispatchPolicy::JoinShortestQueue}};
        WorkloadModel::sirius(); // ensure linkage
        fast = std::make_unique<WorkloadModel>(
            "fast", std::vector<StageProfile>{
                        StageProfile{"S", 0.001, 0.1, 0.5, 1800}});
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    std::unique_ptr<WorkloadModel> fast;
    std::unique_ptr<MultiStageApp> app;
};

TEST_F(LoadGenTest, PoissonRateIsRespected)
{
    LoadGenerator gen(&sim, app.get(), fast.get(),
                      LoadProfile::constant(10.0), 7, 1200);
    gen.start(SimTime::sec(500));
    sim.runUntil(SimTime::sec(500));
    // Expect ~5000 arrivals; tolerate 4 sigma (~283).
    EXPECT_NEAR(static_cast<double>(gen.generated()), 5000.0, 300.0);
    EXPECT_EQ(app->submitted(), gen.generated());
}

TEST_F(LoadGenTest, DeterministicUnderSeed)
{
    LoadGenerator a(&sim, app.get(), fast.get(),
                    LoadProfile::constant(5.0), 11, 1200);
    a.start(SimTime::sec(100));
    sim.runUntil(SimTime::sec(100));
    const auto firstRun = a.generated();

    // A fresh identical world must reproduce the exact count.
    Simulator sim2;
    CmpChip chip2(&sim2, &model, 4);
    MessageBus bus2(&sim2);
    std::vector<StageSpec> specs = {
        {"S", 1, 12, DispatchPolicy::JoinShortestQueue}};
    MultiStageApp app2(&sim2, &chip2, &bus2, "app", specs);
    LoadGenerator b(&sim2, &app2, fast.get(),
                    LoadProfile::constant(5.0), 11, 1200);
    b.start(SimTime::sec(100));
    sim2.runUntil(SimTime::sec(100));
    EXPECT_EQ(firstRun, b.generated());
}

TEST_F(LoadGenTest, ThinningTracksTimeVaryingRate)
{
    // 0 qps-ish in the first half, 20 qps in the second.
    LoadGenerator gen(&sim, app.get(), fast.get(),
                      LoadProfile::piecewise({
                          {SimTime::sec(0), 0.2},
                          {SimTime::sec(249), 0.2},
                          {SimTime::sec(250), 20.0},
                      }),
                      13, 1200);
    gen.start(SimTime::sec(500));
    std::uint64_t firstHalf = 0;
    sim.runUntil(SimTime::sec(250));
    firstHalf = gen.generated();
    sim.runUntil(SimTime::sec(500));
    const std::uint64_t secondHalf = gen.generated() - firstHalf;
    EXPECT_LT(firstHalf, 120u);
    EXPECT_NEAR(static_cast<double>(secondHalf), 5000.0, 350.0);
}

TEST_F(LoadGenTest, StopsAtHorizon)
{
    LoadGenerator gen(&sim, app.get(), fast.get(),
                      LoadProfile::constant(10.0), 7, 1200);
    gen.start(SimTime::sec(10));
    sim.run(); // drain everything
    EXPECT_LE(sim.now().toSec(), 11.0);
}

TEST_F(LoadGenTest, QueriesCarryPerStageDemands)
{
    QueryPtr seen;
    app->setCompletionSink([&](QueryPtr q) { seen = std::move(q); });
    LoadGenerator gen(&sim, app.get(), fast.get(),
                      LoadProfile::constant(5.0), 7, 1200);
    gen.start(SimTime::sec(10));
    sim.run();
    ASSERT_TRUE(seen);
    EXPECT_EQ(seen->numStages(), 1);
    EXPECT_GT(seen->demand(0).serviceSec(1800, 1200), 0.0);
}

TEST(LoadLevelNames, ToString)
{
    EXPECT_STREQ(toString(LoadLevel::Low), "low");
    EXPECT_STREQ(toString(LoadLevel::Medium), "medium");
    EXPECT_STREQ(toString(LoadLevel::High), "high");
}

} // namespace
} // namespace pc
