/**
 * @file
 * Multi-application co-management (paper §8.5): each application has
 * its own power budget, stage organization and command center; they
 * share one CMP whose cores the chip arbitrates.
 */

#include <gtest/gtest.h>

#include "core/command_center.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

class MultiAppTest : public testing::Test
{
  protected:
    struct Tenant
    {
        std::unique_ptr<MultiStageApp> app;
        std::unique_ptr<PowerBudget> budget;
        std::unique_ptr<SpeedupBook> book;
        std::unique_ptr<CommandCenter> center;
        std::unique_ptr<LoadGenerator> gen;
    };

    MultiAppTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 16),
          bus(&sim)
    {
    }

    Tenant
    makeTenant(const WorkloadModel &workload, const std::string &name,
               double capWatts, double qps, std::uint64_t seed)
    {
        Tenant t;
        auto specs = workload.layout(
            std::vector<int>(
                static_cast<std::size_t>(workload.numStages()), 1),
            model.ladder().midLevel());
        t.app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, name,
                                                specs);
        t.budget = std::make_unique<PowerBudget>(Watts(capWatts),
                                                 &model);
        t.book = std::make_unique<SpeedupBook>(
            OfflineProfiler(40).profileWorkload(workload, model, seed));
        ControlConfig cfg;
        cfg.adjustInterval = SimTime::sec(10);
        cfg.enableWithdraw = true;
        t.center = std::make_unique<CommandCenter>(
            &sim, &bus, &chip, t.app.get(), t.budget.get(),
            t.book.get(), cfg, std::make_unique<PowerChiefPolicy>());
        t.center->start();
        t.gen = std::make_unique<LoadGenerator>(
            &sim, t.app.get(), &workload, LoadProfile::constant(qps),
            seed, model.ladder().freqAt(0).value());
        return t;
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
};

TEST_F(MultiAppTest, TwoTenantsCoexistUnderOwnBudgets)
{
    const WorkloadModel sirius = WorkloadModel::sirius();
    const WorkloadModel nlp = WorkloadModel::nlp();
    // Sirius saturating and hungry; NLP lightly loaded.
    Tenant a = makeTenant(sirius, "sirius", 13.56, 0.8, 3);
    Tenant b = makeTenant(nlp, "nlp", 13.56, 0.15, 5);
    a.gen->start(SimTime::sec(300));
    b.gen->start(SimTime::sec(300));
    sim.runUntil(SimTime::sec(300));

    EXPECT_GT(a.app->completed(), 100u);
    EXPECT_GT(b.app->completed(), 20u);
    // Budgets enforced per tenant, not globally pooled.
    EXPECT_LE(a.budget->allocated().value(), 13.56 + 1e-6);
    EXPECT_LE(b.budget->allocated().value(), 13.56 + 1e-6);
}

TEST_F(MultiAppTest, CoreOwnershipNeverOverlaps)
{
    Tenant a = makeTenant(WorkloadModel::sirius(), "sirius", 13.56,
                          0.8, 3);
    Tenant b = makeTenant(WorkloadModel::nlp(), "nlp", 13.56, 0.6, 5);
    a.gen->start(SimTime::sec(200));
    b.gen->start(SimTime::sec(200));

    bool overlap = false;
    sim.schedulePeriodic(SimTime::sec(5), SimTime::sec(5), [&]() {
        std::set<int> cores;
        for (const auto *inst : a.app->allInstances())
            if (!cores.insert(inst->coreId()).second)
                overlap = true;
        for (const auto *inst : b.app->allInstances())
            if (!cores.insert(inst->coreId()).second)
                overlap = true;
    });
    sim.runUntil(SimTime::sec(200));
    EXPECT_FALSE(overlap);
    EXPECT_EQ(static_cast<std::size_t>(chip.numAllocated()),
              a.app->allInstances().size() +
                  b.app->allInstances().size());
}

TEST_F(MultiAppTest, CommandCentersObserveOnlyTheirApp)
{
    Tenant a = makeTenant(WorkloadModel::sirius(), "sirius", 13.56,
                          0.4, 3);
    Tenant b = makeTenant(WorkloadModel::nlp(), "nlp", 13.56, 0.4, 5);
    a.gen->start(SimTime::sec(200));
    b.gen->start(SimTime::sec(200));
    sim.runUntil(SimTime::sec(200));

    EXPECT_EQ(a.center->queriesObserved(), a.app->completed());
    EXPECT_EQ(b.center->queriesObserved(), b.app->completed());
}

TEST_F(MultiAppTest, HungryTenantCannotStealQuietTenantsPower)
{
    // The saturated Sirius tenant boosts aggressively but can only
    // recycle within its own budget/instances; the quiet NLP tenant's
    // cores keep their levels.
    Tenant a = makeTenant(WorkloadModel::sirius(), "sirius", 13.56,
                          0.9, 3);
    Tenant b = makeTenant(WorkloadModel::nlp(), "nlp", 13.56, 0.05, 5);
    const int mid = model.ladder().midLevel();
    a.gen->start(SimTime::sec(300));
    sim.runUntil(SimTime::sec(300));

    // NLP never saw load pressure; its instances are untouched by
    // Sirius's recycling (withdraw may remove idle NLP instances is
    // impossible: one per stage minimum and all start with one).
    for (const auto *inst : b.app->allInstances())
        EXPECT_EQ(inst->level(), mid);
    EXPECT_EQ(b.app->allInstances().size(), 3u);
}

TEST_F(MultiAppTest, ChipExhaustionDegradesGracefully)
{
    // Two saturated tenants on a 16-core chip: instance boosting
    // eventually hits the core limit and falls back to DVFS without
    // crashing or violating either budget.
    Tenant a = makeTenant(WorkloadModel::sirius(), "sirius", 40.0,
                          1.2, 3);
    Tenant b = makeTenant(WorkloadModel::nlp(), "nlp", 40.0, 1.0, 5);
    a.gen->start(SimTime::sec(400));
    b.gen->start(SimTime::sec(400));
    sim.runUntil(SimTime::sec(400));
    EXPECT_LE(chip.numAllocated(), 16);
    EXPECT_LE(a.budget->allocated().value(), 40.0 + 1e-6);
    EXPECT_LE(b.budget->allocated().value(), 40.0 + 1e-6);
    EXPECT_GT(a.app->completed() + b.app->completed(), 200u);
}

} // namespace
} // namespace pc
