/** @file Unit tests for the boosting decision engine (Algorithm 1). */

#include <cmath>

#include <gtest/gtest.h>

#include "core/boost_engine.h"
#include "app/pipeline.h"

namespace pc {
namespace {

/** Compute-bound normalized-execution-time table: r(f) = 1200/f. */
SpeedupTable
computeBoundTable(const FrequencyLadder &ladder)
{
    std::vector<double> r;
    for (const MHz f : ladder.frequencies())
        r.push_back(1200.0 / f.value());
    return SpeedupTable(std::move(r));
}

class EngineTest : public testing::Test
{
  protected:
    EngineTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim),
          cpufreq(&chip)
    {
        std::vector<StageSpec> specs = {
            {"S", 0, 0, DispatchPolicy::JoinShortestQueue}};
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
        book.setStage(0, computeBoundTable(model.ladder()));
    }

    void
    makeBudget(double capWatts)
    {
        budget = std::make_unique<PowerBudget>(Watts(capWatts), &model);
        realloc = std::make_unique<PowerReallocator>(budget.get(),
                                                     &cpufreq);
        engine = std::make_unique<BoostingDecisionEngine>(
            budget.get(), realloc.get(), &book);
    }

    InstanceSnapshot
    addInstance(int level, double metric, std::size_t queue = 0,
                double q = 0.0, double s = 0.0)
    {
        auto *inst = app->stage(0).launchInstance(level);
        EXPECT_TRUE(budget->allocate(inst->id(), level));
        InstanceSnapshot snap;
        snap.instanceId = inst->id();
        snap.stageIndex = 0;
        snap.coreId = inst->coreId();
        snap.level = level;
        snap.metric = metric;
        snap.queueLength = queue;
        snap.avgQueuingSec = q;
        snap.avgServingSec = s;
        return snap;
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    CpufreqDriver cpufreq;
    std::unique_ptr<MultiStageApp> app;
    SpeedupBook book;
    std::unique_ptr<PowerBudget> budget;
    std::unique_ptr<PowerReallocator> realloc;
    std::unique_ptr<BoostingDecisionEngine> engine;
};

TEST_F(EngineTest, EquationTwoExactValue)
{
    InstanceSnapshot bn;
    bn.queueLength = 5;
    bn.avgQueuingSec = 2.0;
    bn.avgServingSec = 1.0;
    // (5-1)*(2+1)/2 + 1 = 7.
    EXPECT_DOUBLE_EQ(BoostingDecisionEngine::expectedInstanceDelay(bn),
                     7.0);
}

TEST_F(EngineTest, EquationThreeExactValue)
{
    makeBudget(1000.0);
    InstanceSnapshot bn;
    bn.stageIndex = 0;
    bn.level = 0;
    bn.queueLength = 5;
    bn.avgQueuingSec = 2.0;
    bn.avgServingSec = 1.0;
    // r(6)/r(0) = (1200/1800)/(1200/1200) = 2/3.
    // (2/3) * ((5-1)*3 + 1) = 26/3.
    EXPECT_NEAR(engine->expectedFrequencyDelay(bn, 6), 26.0 / 3.0,
                1e-12);
}

TEST_F(EngineTest, AffordableLevelMatchesModel)
{
    makeBudget(1000.0);
    InstanceSnapshot bn;
    bn.level = 0;
    // Spending exactly P(6)-P(0) buys level 6.
    const Watts spend = model.deltaWatts(0, 6);
    EXPECT_EQ(engine->affordableLevel(bn, spend), 6);
    // A hair less only buys level 5.
    EXPECT_EQ(engine->affordableLevel(bn, spend - Watts(1e-6)), 5);
    EXPECT_EQ(engine->affordableLevel(bn, Watts(0.0)), 0);
    EXPECT_EQ(engine->affordableLevel(bn, Watts(1000.0)), 12);
}

TEST_F(EngineTest, EmptyRankingReturnsNone)
{
    makeBudget(1000.0);
    EXPECT_EQ(engine->selectBoosting({}).kind, BoostKind::None);
}

TEST_F(EngineTest, LongQueueWithHeadroomPrefersInstance)
{
    makeBudget(1000.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(0, 5.0, /*queue=*/5, /*q=*/2.0,
                                 /*s=*/1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    // Ti = 7; equivalent-power frequency boost only reaches a level
    // whose r-ratio leaves Tf > 7 (compute-bound table).
    EXPECT_EQ(d.kind, BoostKind::Instance);
    EXPECT_EQ(d.targetInstance, ranked.back().instanceId);
    EXPECT_LT(d.expectedInstanceSec, d.expectedFrequencySec);
    EXPECT_EQ(d.toLevel, 0); // clone inherits the bottleneck's level
}

TEST_F(EngineTest, ShortQueuePrefersFrequency)
{
    makeBudget(1000.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(0, 5.0, /*queue=*/1, /*q=*/0.1,
                                 /*s=*/2.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_EQ(d.kind, BoostKind::Frequency);
    EXPECT_GT(d.toLevel, 0);
}

TEST_F(EngineTest, QueueExactlyTwoStillPrefersFrequency)
{
    makeBudget(1000.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(0, 5.0, /*queue=*/2, /*q=*/1.0,
                                 /*s=*/1.0));
    EXPECT_EQ(engine->selectBoosting(ranked).kind,
              BoostKind::Frequency);
}

TEST_F(EngineTest, SteepSpeedupMakesFrequencyWinLongQueue)
{
    // A table where the equivalent-power level already halves the
    // execution time: Tf < Ti even for a long queue.
    std::vector<double> r = {1.0};
    for (int lvl = 1; lvl < model.ladder().numLevels(); ++lvl)
        r.push_back(0.3);
    book.setStage(0, SpeedupTable(std::move(r)));
    makeBudget(1000.0);

    SortedSnapshots ranked;
    ranked.push_back(addInstance(0, 5.0, /*queue=*/3, /*q=*/0.1,
                                 /*s=*/2.0));
    // Ti = (3-1)*2.1/2 + 2 = 4.1; Tf = 0.3*((3-1)*2.1+2) = 1.86.
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_EQ(d.kind, BoostKind::Frequency);
    EXPECT_NEAR(d.expectedInstanceSec, 4.1, 1e-9);
    EXPECT_NEAR(d.expectedFrequencySec, 1.86, 1e-9);
}

TEST_F(EngineTest, RecyclesDonorsToFundInstanceCost)
{
    // Cap fits two mid-level instances exactly; funding a clone of the
    // bottleneck requires recycling the donor.
    makeBudget(2 * model.activeWatts(6).value() + 2.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(6, 0.1)); // donor
    ranked.push_back(addInstance(6, 9.0, /*queue=*/6, /*q=*/1.0,
                                 /*s=*/1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_GT(d.recycledWatts.value(), 0.0);
    // Donor stepped down; bottleneck untouched by recycling.
    EXPECT_LT(cpufreq.getLevel(ranked[0].coreId), 6);
    EXPECT_EQ(cpufreq.getLevel(ranked[1].coreId), 6);
    EXPECT_EQ(d.kind, BoostKind::Instance);
}

TEST_F(EngineTest, FallsBackToFrequencyWhenCloneUnaffordable)
{
    // Single instance at level 6, tight cap: no donors, clone at P(6)
    // cannot be funded, so spend the (small) headroom on DVFS.
    makeBudget(model.activeWatts(6).value() + 1.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(6, 5.0, /*queue=*/8, /*q=*/1.0,
                                 /*s=*/1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_EQ(d.kind, BoostKind::Frequency);
    EXPECT_GT(d.toLevel, 6);
    EXPECT_LE(model.deltaWatts(6, d.toLevel).value(), 1.0 + 1e-9);
}

TEST_F(EngineTest, NoneWhenStuckAtHeadroomZeroAndNoDonors)
{
    makeBudget(model.activeWatts(6).value());
    SortedSnapshots ranked;
    ranked.push_back(addInstance(6, 5.0, /*queue=*/8, /*q=*/1.0,
                                 /*s=*/1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_EQ(d.kind, BoostKind::None);
}

TEST_F(EngineTest, BottleneckAtMaxLevelLongQueueStillClones)
{
    makeBudget(1000.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(12, 5.0, /*queue=*/8, /*q=*/1.0,
                                 /*s=*/1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    // Frequency boosting cannot improve level 12; Ti < Tf = unchanged.
    EXPECT_EQ(d.kind, BoostKind::Instance);
}

TEST_F(EngineTest, DecisionRecordsTarget)
{
    makeBudget(1000.0);
    SortedSnapshots ranked;
    ranked.push_back(addInstance(0, 0.5));
    ranked.push_back(addInstance(3, 7.0, 4, 1.0, 1.0));
    const BoostDecision d = engine->selectBoosting(ranked);
    EXPECT_EQ(d.targetInstance, ranked.back().instanceId);
    EXPECT_EQ(d.stageIndex, 0);
    EXPECT_EQ(d.fromLevel, 3);
}

TEST_F(EngineTest, ToStringOfKinds)
{
    EXPECT_STREQ(toString(BoostKind::None), "none");
    EXPECT_STREQ(toString(BoostKind::Frequency), "frequency");
    EXPECT_STREQ(toString(BoostKind::Instance), "instance");
}

TEST(EngineDeath, NullDependenciesAreFatal)
{
    EXPECT_EXIT(BoostingDecisionEngine(nullptr, nullptr, nullptr),
                testing::ExitedWithCode(1), "requires");
}

} // namespace
} // namespace pc
