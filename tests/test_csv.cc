/** @file Unit tests for the CSV writer and TextTable. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace pc {
namespace {

TEST(CsvWriter, PlainRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriter, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, PlainCellUntouched)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(CsvWriter, NumericRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.numericRow({1.0, 2.5, 0.001});
    EXPECT_EQ(out.str(), "1,2.5,0.001\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string s = out.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded)
{
    TextTable table({"a", "b", "c"});
    table.addRow({"only-one"});
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

} // namespace
} // namespace pc
