/**
 * @file
 * Fault-injection subsystem tests: plan parsing and matching, the bus /
 * MSR / RAPL fault primitives, and the end-to-end robustness
 * invariants (zero-rate byte identity, crash/recovery query
 * conservation, budget-ledger reconciliation under dropped PERF_CTL
 * writes).
 */

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/runner.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hal/chip.h"
#include "hal/msr.h"
#include "hal/rapl.h"
#include "rpc/bus.h"

namespace pc {
namespace {

// ---------------------------------------------------------- FaultPlan

TEST(FaultPlan, PatternMatching)
{
    EXPECT_TRUE(FaultPlan::matches("*", "anything/at/all"));
    EXPECT_TRUE(FaultPlan::matches("*", ""));
    EXPECT_TRUE(FaultPlan::matches("command-*", "command-center/app"));
    EXPECT_TRUE(FaultPlan::matches("command-*", "command-"));
    EXPECT_FALSE(FaultPlan::matches("command-*", "node0/set-frequency"));
    EXPECT_TRUE(FaultPlan::matches("echo", "echo"));
    EXPECT_FALSE(FaultPlan::matches("echo", "echo2"));
    EXPECT_FALSE(FaultPlan::matches("echo2", "echo"));
}

TEST(FaultPlan, FirstMatchingRuleWins)
{
    FaultPlan plan;
    BusFaultRule specific;
    specific.endpoint = "asr/*";
    specific.dropRate = 0.5;
    BusFaultRule general;
    general.endpoint = "*";
    general.dropRate = 0.1;
    plan.bus.push_back(specific);
    plan.bus.push_back(general);

    ASSERT_NE(plan.ruleFor("asr/0"), nullptr);
    EXPECT_DOUBLE_EQ(plan.ruleFor("asr/0")->dropRate, 0.5);
    ASSERT_NE(plan.ruleFor("qa/0"), nullptr);
    EXPECT_DOUBLE_EQ(plan.ruleFor("qa/0")->dropRate, 0.1);
    plan.bus.clear();
    EXPECT_EQ(plan.ruleFor("asr/0"), nullptr);
}

TEST(FaultPlan, AnyEffectReflectsConfiguredRates)
{
    FaultPlan plan;
    plan.active = true;
    EXPECT_FALSE(plan.anyEffect()); // armed but inert

    FaultPlan withBus = plan;
    BusFaultRule rule;
    rule.duplicateRate = 0.01;
    withBus.bus.push_back(rule);
    EXPECT_TRUE(withBus.anyEffect());

    FaultPlan withCrash = plan;
    CrashEvent crash;
    crash.at = SimTime::sec(10);
    withCrash.crashes.push_back(crash);
    EXPECT_TRUE(withCrash.anyEffect());

    FaultPlan withTelemetry = plan;
    withTelemetry.telemetry.raplFailRate = 0.2;
    EXPECT_TRUE(withTelemetry.anyEffect());
}

TEST(FaultPlan, CanonicalFormIsStableAndKeyed)
{
    FaultPlan inactive;
    EXPECT_EQ(inactive.canonical(), "");

    auto build = [](std::uint64_t seed) {
        FaultPlan plan;
        plan.active = true;
        plan.seed = seed;
        BusFaultRule rule;
        rule.endpoint = "command-*";
        rule.dropRate = 0.05;
        plan.bus.push_back(rule);
        plan.telemetry.truncateRate = 0.1;
        return plan;
    };
    EXPECT_EQ(build(3).canonical(), build(3).canonical());
    EXPECT_NE(build(3).canonical(), build(4).canonical());
    EXPECT_NE(build(3).canonical(), "");
}

TEST(FaultPlan, ParsesFullJsonSchema)
{
    const char *text = R"({
        "seed": 7,
        "bus": [
            {"endpoint": "command-*", "drop": 0.05, "duplicate": 0.01,
             "reorder": 0.1, "reorder_jitter_ms": 8}
        ],
        "crashes": [
            {"stage": 1, "at_sec": 60, "recovery_sec": 10}
        ],
        "telemetry": {"truncate": 0.05, "stale": 0.02,
                      "rapl_fail": 0.1, "perf_ctl_fail": 0.15}
    })";
    const JsonParseResult doc = parseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.error;
    std::string error;
    const auto plan = faultPlanFromJson(*doc.value, &error);
    ASSERT_TRUE(plan.has_value()) << error;

    EXPECT_TRUE(plan->active);
    EXPECT_EQ(plan->seed, 7u);
    ASSERT_EQ(plan->bus.size(), 1u);
    EXPECT_EQ(plan->bus[0].endpoint, "command-*");
    EXPECT_DOUBLE_EQ(plan->bus[0].dropRate, 0.05);
    EXPECT_DOUBLE_EQ(plan->bus[0].duplicateRate, 0.01);
    EXPECT_DOUBLE_EQ(plan->bus[0].reorderRate, 0.1);
    EXPECT_EQ(plan->bus[0].reorderJitterMax, SimTime::msec(8));
    ASSERT_EQ(plan->crashes.size(), 1u);
    EXPECT_EQ(plan->crashes[0].stage, 1);
    EXPECT_EQ(plan->crashes[0].at, SimTime::sec(60));
    EXPECT_EQ(plan->crashes[0].recovery, SimTime::sec(10));
    EXPECT_DOUBLE_EQ(plan->telemetry.truncateRate, 0.05);
    EXPECT_DOUBLE_EQ(plan->telemetry.staleRate, 0.02);
    EXPECT_DOUBLE_EQ(plan->telemetry.raplFailRate, 0.1);
    EXPECT_DOUBLE_EQ(plan->telemetry.perfCtlFailRate, 0.15);
}

TEST(FaultPlan, RejectsSchemaViolations)
{
    auto parse = [](const char *text) {
        const JsonParseResult doc = parseJson(text);
        EXPECT_TRUE(doc.ok()) << doc.error;
        std::string error;
        const auto plan = faultPlanFromJson(*doc.value, &error);
        EXPECT_FALSE(plan.has_value());
        return error;
    };
    // Rates must sit in [0, 1].
    EXPECT_NE(parse(R"({"bus": [{"drop": 1.5}]})"), "");
    EXPECT_NE(parse(R"({"telemetry": {"stale": -0.1}})"), "");
    // Crashes need a time and a positive recovery.
    EXPECT_NE(parse(R"({"crashes": [{"stage": 0}]})"), "");
    EXPECT_NE(
        parse(R"({"crashes": [{"at_sec": 5, "recovery_sec": 0}]})"),
        "");
    EXPECT_NE(parse(R"({"crashes": [{"stage": -1, "at_sec": 5}]})"),
              "");
}

TEST(FaultPlan, FileLoaderPrefixesPathInErrors)
{
    std::string error;
    EXPECT_FALSE(
        faultPlanFromFile("/nonexistent/plan.json", &error).has_value());
    EXPECT_NE(error.find("/nonexistent/plan.json"), std::string::npos);

    const std::string path =
        testing::TempDir() + "/pc_fault_plan_test.json";
    {
        std::ofstream out(path);
        out << R"({"telemetry": {"rapl_fail": 0.5}})";
    }
    const auto plan = faultPlanFromFile(path, &error);
    ASSERT_TRUE(plan.has_value()) << error;
    EXPECT_DOUBLE_EQ(plan->telemetry.raplFailRate, 0.5);
}

// ------------------------------------------------- bus fault actions

class BusFaultTest : public testing::Test
{
  protected:
    BusFaultTest() : bus(&sim)
    {
        endpoint = bus.registerEndpoint(
            "sink", [this](const MessagePtr &msg) {
                received.push_back(msg);
                times.push_back(sim.now());
            });
    }

    struct Ping : Message
    {
        explicit Ping(int v) : value(v) {}
        const char *type() const override { return "ping"; }
        int value;
    };

    void
    send(int value)
    {
        bus.send(endpoint, std::make_shared<Ping>(value));
    }

    Simulator sim;
    MessageBus bus;
    EndpointId endpoint = 0;
    std::vector<MessagePtr> received;
    std::vector<SimTime> times;
};

TEST_F(BusFaultTest, DropActionSuppressesDelivery)
{
    bus.setFaultFilter([](const std::string &,
                          const MessagePtr &) -> std::optional<BusFaultAction> {
        BusFaultAction action;
        action.drop = true;
        return action;
    });
    send(1);
    sim.run();
    EXPECT_TRUE(received.empty());
    EXPECT_EQ(bus.messagesFaultDropped(), 1u);
    // Injected losses are kept apart from organic dead-endpoint drops.
    EXPECT_EQ(bus.messagesDropped(), 0u);
    EXPECT_EQ(bus.messagesDelivered(), 0u);
}

TEST_F(BusFaultTest, DuplicateActionDeliversExtraCopies)
{
    bus.setFaultFilter([](const std::string &,
                          const MessagePtr &) -> std::optional<BusFaultAction> {
        BusFaultAction action;
        action.duplicates = 2;
        return action;
    });
    send(7);
    sim.run();
    ASSERT_EQ(received.size(), 3u);
    for (const auto &msg : received)
        EXPECT_EQ(static_cast<const Ping *>(msg.get())->value, 7);
}

TEST_F(BusFaultTest, ExtraDelayReordersAgainstLaterTraffic)
{
    bool first = true;
    bus.setFaultFilter([&](const std::string &,
                           const MessagePtr &) -> std::optional<BusFaultAction> {
        if (!first)
            return std::nullopt;
        first = false;
        BusFaultAction action;
        action.extraDelay = SimTime::msec(5);
        return action;
    });
    send(1); // jittered by 5 ms
    send(2); // delivered immediately
    sim.run();
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(static_cast<const Ping *>(received[0].get())->value, 2);
    EXPECT_EQ(static_cast<const Ping *>(received[1].get())->value, 1);
    EXPECT_EQ(times[1], SimTime::msec(5));
}

TEST_F(BusFaultTest, ReplaceSubstitutesPayload)
{
    bus.setFaultFilter([](const std::string &,
                          const MessagePtr &) -> std::optional<BusFaultAction> {
        BusFaultAction action;
        action.replace = std::make_shared<Ping>(99);
        return action;
    });
    send(1);
    sim.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(static_cast<const Ping *>(received[0].get())->value, 99);
}

TEST_F(BusFaultTest, NulloptLeavesTrafficUntouched)
{
    std::uint64_t consulted = 0;
    bus.setFaultFilter([&](const std::string &toName,
                           const MessagePtr &) -> std::optional<BusFaultAction> {
        ++consulted;
        EXPECT_EQ(toName, "sink");
        return std::nullopt;
    });
    send(1);
    send(2);
    sim.run();
    EXPECT_EQ(consulted, 2u);
    EXPECT_EQ(received.size(), 2u);
    EXPECT_EQ(bus.messagesFaultDropped(), 0u);
}

// ----------------------------------------------- MSR and RAPL faults

TEST(MsrFault, DroppedWriteKeepsOldValueAndSkipsHook)
{
    MsrSpace msr;
    int hookFires = 0;
    msr.setWriteHook(msr::IA32_PERF_CTL,
                     [&](int, std::uint32_t, std::uint64_t) {
                         ++hookFires;
                     });
    msr.write(0, msr::IA32_PERF_CTL, msr::perfCtlFromMHz(1800));
    EXPECT_EQ(hookFires, 1);

    bool dropWrites = true;
    msr.setWriteFaultFilter([&](int, std::uint32_t index) {
        return dropWrites && index == msr::IA32_PERF_CTL;
    });
    msr.write(0, msr::IA32_PERF_CTL, msr::perfCtlFromMHz(2400));
    // Exactly like a wrmsr the hardware never applied: read-back shows
    // the old operating point and the chip model never saw the write.
    EXPECT_EQ(msr.read(0, msr::IA32_PERF_CTL),
              msr::perfCtlFromMHz(1800));
    EXPECT_EQ(hookFires, 1);

    dropWrites = false;
    msr.write(0, msr::IA32_PERF_CTL, msr::perfCtlFromMHz(2400));
    EXPECT_EQ(msr.read(0, msr::IA32_PERF_CTL),
              msr::perfCtlFromMHz(2400));
    EXPECT_EQ(hookFires, 2);
}

TEST(RaplFault, FailedReadHoldsSampleWithoutLosingEnergy)
{
    Simulator sim;
    PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 4);
    RaplReader rapl(&chip);
    const int coreId = *chip.acquireCore(0);
    chip.core(coreId).setBusy(true);

    sim.runUntil(SimTime::sec(10));
    const double first = rapl.windowPower().value();
    EXPECT_GT(first, 0.0);

    bool fail = true;
    rapl.setFaultHook([&] { return fail; });
    sim.runUntil(SimTime::sec(20));
    // Failed read: the previous sample is held.
    EXPECT_DOUBLE_EQ(rapl.windowPower().value(), first);

    fail = false;
    sim.runUntil(SimTime::sec(30));
    // The window stayed open across the failure, so the next good read
    // integrates the full 20 s — constant load means the same average,
    // up to RAPL energy-counter quantization.
    EXPECT_NEAR(rapl.windowPower().value(), first, 1e-4);
}

// -------------------------------------------- end-to-end invariants

TEST(FaultIntegration, ZeroRatePlanIsByteIdenticalToNoFaultLayer)
{
    // The central determinism contract: an armed injector whose rates
    // are all zero must not perturb the simulation in any way — the
    // golden Fig. 11 run serializes to the exact same bytes.
    const ExperimentRunner runner(/*recordTraces=*/true);
    const std::string plain =
        runResultToJson(runner.run(Scenario::goldenFig11())).dump();

    Scenario faulty = Scenario::goldenFig11();
    faulty.faults.active = true;
    faulty.faults.seed = 99; // seed alone must not matter
    BusFaultRule inert;      // explicit all-zero rule, still no draws
    inert.endpoint = "*";
    faulty.faults.bus.push_back(inert);
    const std::string withLayer =
        runResultToJson(runner.run(faulty)).dump();

    EXPECT_EQ(plain, withLayer);
}

TEST(FaultIntegration, CrashAndRecoveryConserveQueries)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, 7);
    sc.name = "faults/crash-recovery";
    sc.duration = SimTime::sec(120);
    sc.warmup = SimTime::sec(20);
    sc.faults.active = true;
    sc.faults.seed = 11;
    CrashEvent crash;
    crash.stage = 1;
    crash.at = SimTime::sec(50);
    crash.recovery = SimTime::sec(10);
    sc.faults.crashes.push_back(crash);

    // The runner itself fatally checks query conservation
    // (submitted == completed + resident) and budget-ledger agreement
    // after every fault run; completing with progress is the assertion.
    const ExperimentRunner runner;
    const RunResult result = runner.run(sc);
    EXPECT_GT(result.completed, 0u);
    EXPECT_GE(result.submitted, result.completed);
}

TEST(FaultIntegration, DroppedPerfCtlWritesReconcileTheLedger)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, 7);
    sc.name = "faults/perfctl";
    sc.duration = SimTime::sec(100);
    sc.warmup = SimTime::sec(20);
    sc.faults.active = true;
    sc.faults.seed = 5;
    // Every DVFS actuation fails: boosts never take effect and the
    // policies must walk their reservations back instead of leaking
    // phantom watts. The runner's post-run ledger check
    // (budget level == actual level for every live instance) fatals
    // if reconciliation missed a case.
    sc.faults.telemetry.perfCtlFailRate = 1.0;

    const ExperimentRunner runner;
    const RunResult result = runner.run(sc);
    EXPECT_GT(result.completed, 0u);
}

TEST(FaultIntegration, FaultRunsAreSeedDeterministic)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, 7);
    sc.name = "faults/deterministic";
    sc.duration = SimTime::sec(80);
    sc.warmup = SimTime::sec(10);
    sc.faults.active = true;
    sc.faults.seed = 21;
    BusFaultRule rule;
    rule.dropRate = 0.05;
    rule.reorderRate = 0.1;
    sc.faults.bus.push_back(rule);
    sc.faults.telemetry.perfCtlFailRate = 0.2;

    const ExperimentRunner runner(/*recordTraces=*/true);
    const std::string a = runResultToJson(runner.run(sc)).dump();
    const std::string b = runResultToJson(runner.run(sc)).dump();
    EXPECT_EQ(a, b);

    Scenario other = sc;
    other.faults.seed = 22;
    const std::string c = runResultToJson(runner.run(other)).dump();
    EXPECT_NE(a, c); // a different fault stream is a different run
}

} // namespace
} // namespace pc
