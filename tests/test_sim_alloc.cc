/**
 * @file
 * Allocation accounting for the simulator hot path.
 *
 * The PR-4 perf contract: once the event pool, heap vector and free
 * list have grown to steady state, scheduling, cancelling and
 * dispatching events — including periodic ticks — performs zero heap
 * allocations for callbacks whose captures fit the InplaceFunction
 * inline buffer. This binary replaces the global allocation functions
 * with counting versions to pin that contract.
 *
 * Under ASan/TSan the sanitizer runtime owns the allocator, so the
 * counting assertions are skipped there; the plain and Release ctest
 * legs still enforce them.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/bottleneck.h"
#include "core/withdraw.h"
#include "sim/simulator.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PC_SANITIZED 1
#endif
#if !defined(PC_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PC_SANITIZED 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace pc {
namespace {

std::uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

class SimAllocTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
#ifdef PC_SANITIZED
        GTEST_SKIP() << "allocation counting is unreliable under "
                        "sanitizer runtimes";
#endif
    }
};

TEST_F(SimAllocTest, SteadyStateScheduleDispatchIsAllocationFree)
{
    Simulator sim;
    std::uint64_t sink = 0;

    // Warm up: grow the pool, the heap vector and their capacities.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 512; ++i)
            sim.scheduleAfter(SimTime::usec(i + 1), [&sink]() { ++sink; });
        sim.run();
    }

    const std::uint64_t before = allocationCount();
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 512; ++i)
            sim.scheduleAfter(SimTime::usec(i + 1), [&sink]() { ++sink; });
        sim.run();
    }
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(sink, 20u * 512u);
}

TEST_F(SimAllocTest, SteadyStateCancelPathIsAllocationFree)
{
    Simulator sim;
    std::vector<EventId> ids(512);

    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 512; ++i)
            ids[static_cast<std::size_t>(i)] =
                sim.scheduleAfter(SimTime::usec(i + 1), []() {});
        for (const EventId id : ids)
            sim.cancel(id);
        sim.run();
    }

    const std::uint64_t before = allocationCount();
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 512; ++i)
            ids[static_cast<std::size_t>(i)] =
                sim.scheduleAfter(SimTime::usec(i + 1), []() {});
        for (const EventId id : ids)
            sim.cancel(id);
        sim.run();
    }
    EXPECT_EQ(allocationCount() - before, 0u);
}

TEST_F(SimAllocTest, SteadyStatePeriodicTickIsAllocationFree)
{
    Simulator sim;
    std::uint64_t ticks = 0;
    sim.schedulePeriodic(SimTime::usec(1), SimTime::usec(1),
                         [&ticks]() { ++ticks; });
    sim.runUntil(SimTime::usec(1000));

    const std::uint64_t before = allocationCount();
    sim.runUntil(SimTime::usec(20000));
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(ticks, 20000u);
}

TEST_F(SimAllocTest, RepresentativeBusCaptureSchedulesWithoutAllocating)
{
    // The largest steady-state capture in the runtime: pointer +
    // endpoint id + shared_ptr message (see the static_assert in
    // simulator.h). The shared_ptr is created outside the measured
    // region; moving it into the callback must not allocate.
    Simulator sim;
    int delivered = 0;
    for (int i = 0; i < 64; ++i) {
        auto msg = std::make_shared<int>(i);
        sim.scheduleAfter(SimTime::usec(i + 1),
                          [&delivered, id = std::uint64_t(7),
                           msg = std::move(msg)]() {
                              delivered += static_cast<int>(id) - 7;
                              ++delivered;
                          });
    }
    sim.run();

    auto msg = std::make_shared<int>(99);
    const std::uint64_t before = allocationCount();
    sim.scheduleAfter(SimTime::usec(1),
                      [&delivered, id = std::uint64_t(7),
                       msg = std::move(msg)]() { ++delivered; });
    sim.run();
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(delivered, 65);
}

TEST_F(SimAllocTest, SteadyStateBottleneckObserveIsAllocationFree)
{
    // The dense-id rewrite's contract: once every instance has a local
    // id and the moving windows have grown their ring capacity, the
    // per-completion observe() path — id resolve, window append, stage
    // aggregate — performs zero heap allocations.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 8);
    MessageBus bus(&sim);
    std::vector<StageSpec> specs = {
        {"A", 2, 0, DispatchPolicy::JoinShortestQueue},
        {"B", 2, 0, DispatchPolicy::JoinShortestQueue},
    };
    MultiStageApp app(&sim, &chip, &bus, "app", specs);
    BottleneckIdentifier identifier(SimTime::sec(30));

    // Snapshot the instance ids once: the real caller observes from a
    // completion callback and never rebuilds the live-instance list.
    struct Target
    {
        std::int64_t id;
        int stage;
    };
    std::vector<Target> targets;
    for (int s = 0; s < app.numStages(); ++s)
        for (const auto *inst : app.stage(s).instances())
            targets.push_back(Target{inst->id(), s});

    std::vector<HopRecord> hops(1);
    const auto feed = [&](SimTime at) {
        for (const Target &t : targets) {
            hops[0].instanceId = t.id;
            hops[0].stageIndex = t.stage;
            hops[0].enqueued = at;
            hops[0].started = at + SimTime::msec(2);
            hops[0].finished = at + SimTime::msec(5);
            identifier.observe(at, hops);
        }
    };

    // Warm up past one full window span (30 s = 3000 feeds at 10 ms):
    // local ids are allocated, and the MovingWindow rings grow to the
    // high-water capacity of a sliding window before eviction kicks in.
    for (int i = 0; i < 4000; ++i)
        feed(SimTime::msec(10 * i));

    const std::uint64_t before = allocationCount();
    for (int i = 4000; i < 6000; ++i)
        feed(SimTime::msec(10 * i));
    EXPECT_EQ(allocationCount() - before, 0u);
}

TEST_F(SimAllocTest, SteadyStateWithdrawScanAllocatesOnlyTheResult)
{
    // checkAndWithdraw's per-instance scan reads the dense tables with
    // zero hash lookups and zero allocations; the only steady-state
    // allocations permitted are the returned ids vector and the ranked
    // snapshot fed in (both bounded, counted here explicitly).
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 8);
    MessageBus bus(&sim);
    std::vector<StageSpec> specs = {
        {"A", 3, 0, DispatchPolicy::JoinShortestQueue},
        {"B", 3, 0, DispatchPolicy::JoinShortestQueue},
    };
    MultiStageApp app(&sim, &chip, &bus, "app", specs);
    PowerBudget budget(Watts(1000.0), &model);
    for (const auto *inst : app.allInstances())
        ASSERT_TRUE(budget.allocate(inst->id(), inst->level()));
    WithdrawMonitor monitor(&sim, &app, &budget, /*threshold=*/0.2);

    // Keep every instance ~90% busy so nothing is ever below the
    // threshold and the scan runs its full six-instance length every
    // interval. The query feeding itself allocates, so only the
    // checkAndWithdraw call is inside the measured region.
    std::int64_t nextId = 1;
    const auto occupyAll = [&]() {
        for (int s = 0; s < app.numStages(); ++s)
            for (auto *inst : app.stage(s).instances())
                inst->enqueue(std::make_shared<Query>(
                    nextId++, sim.now(),
                    std::vector<WorkDemand>{{0.9, 0.0}, {0.9, 0.0}}));
    };

    const SortedSnapshots ranked;
    for (int i = 0; i < 32; ++i) {
        occupyAll();
        sim.runUntil(SimTime::sec(i + 1));
        (void)monitor.checkAndWithdraw(ranked);
    }

    std::uint64_t scanAllocs = 0;
    for (int i = 32; i < 64; ++i) {
        occupyAll();
        sim.runUntil(SimTime::sec(i + 1));
        const std::uint64_t before = allocationCount();
        const auto withdrawn = monitor.checkAndWithdraw(ranked);
        scanAllocs += allocationCount() - before;
        EXPECT_TRUE(withdrawn.empty());
    }
    // Budget: one allocation per call for the (empty) result vector is
    // the ceiling; a correct empty vector allocates nothing at all.
    EXPECT_LE(scanAllocs, 32u);
}

TEST_F(SimAllocTest, OversizedCaptureFallsBackToOneAllocation)
{
    // Contract boundary: a capture beyond the inline buffer still
    // works, it just pays the InplaceFunction heap fallback.
    struct Big
    {
        char bytes[4 * kInplaceFunctionBufferSize] = {};
    };
    Simulator sim;
    Big big;
    big.bytes[0] = 1;
    int sum = 0;
    const std::uint64_t before = allocationCount();
    sim.scheduleAfter(SimTime::usec(1),
                      [&sum, big]() { sum += big.bytes[0]; });
    EXPECT_GE(allocationCount() - before, 1u);
    sim.run();
    EXPECT_EQ(sum, 1);
}

} // namespace
} // namespace pc
