/**
 * @file
 * Allocation accounting for the simulator hot path.
 *
 * The PR-4 perf contract: once the event pool, heap vector and free
 * list have grown to steady state, scheduling, cancelling and
 * dispatching events — including periodic ticks — performs zero heap
 * allocations for callbacks whose captures fit the InplaceFunction
 * inline buffer. This binary replaces the global allocation functions
 * with counting versions to pin that contract.
 *
 * Under ASan/TSan the sanitizer runtime owns the allocator, so the
 * counting assertions are skipped there; the plain and Release ctest
 * legs still enforce them.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/simulator.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PC_SANITIZED 1
#endif
#if !defined(PC_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PC_SANITIZED 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace pc {
namespace {

std::uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

class SimAllocTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
#ifdef PC_SANITIZED
        GTEST_SKIP() << "allocation counting is unreliable under "
                        "sanitizer runtimes";
#endif
    }
};

TEST_F(SimAllocTest, SteadyStateScheduleDispatchIsAllocationFree)
{
    Simulator sim;
    std::uint64_t sink = 0;

    // Warm up: grow the pool, the heap vector and their capacities.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 512; ++i)
            sim.scheduleAfter(SimTime::usec(i + 1), [&sink]() { ++sink; });
        sim.run();
    }

    const std::uint64_t before = allocationCount();
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 512; ++i)
            sim.scheduleAfter(SimTime::usec(i + 1), [&sink]() { ++sink; });
        sim.run();
    }
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(sink, 20u * 512u);
}

TEST_F(SimAllocTest, SteadyStateCancelPathIsAllocationFree)
{
    Simulator sim;
    std::vector<EventId> ids(512);

    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 512; ++i)
            ids[static_cast<std::size_t>(i)] =
                sim.scheduleAfter(SimTime::usec(i + 1), []() {});
        for (const EventId id : ids)
            sim.cancel(id);
        sim.run();
    }

    const std::uint64_t before = allocationCount();
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 512; ++i)
            ids[static_cast<std::size_t>(i)] =
                sim.scheduleAfter(SimTime::usec(i + 1), []() {});
        for (const EventId id : ids)
            sim.cancel(id);
        sim.run();
    }
    EXPECT_EQ(allocationCount() - before, 0u);
}

TEST_F(SimAllocTest, SteadyStatePeriodicTickIsAllocationFree)
{
    Simulator sim;
    std::uint64_t ticks = 0;
    sim.schedulePeriodic(SimTime::usec(1), SimTime::usec(1),
                         [&ticks]() { ++ticks; });
    sim.runUntil(SimTime::usec(1000));

    const std::uint64_t before = allocationCount();
    sim.runUntil(SimTime::usec(20000));
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(ticks, 20000u);
}

TEST_F(SimAllocTest, RepresentativeBusCaptureSchedulesWithoutAllocating)
{
    // The largest steady-state capture in the runtime: pointer +
    // endpoint id + shared_ptr message (see the static_assert in
    // simulator.h). The shared_ptr is created outside the measured
    // region; moving it into the callback must not allocate.
    Simulator sim;
    int delivered = 0;
    for (int i = 0; i < 64; ++i) {
        auto msg = std::make_shared<int>(i);
        sim.scheduleAfter(SimTime::usec(i + 1),
                          [&delivered, id = std::uint64_t(7),
                           msg = std::move(msg)]() {
                              delivered += static_cast<int>(id) - 7;
                              ++delivered;
                          });
    }
    sim.run();

    auto msg = std::make_shared<int>(99);
    const std::uint64_t before = allocationCount();
    sim.scheduleAfter(SimTime::usec(1),
                      [&delivered, id = std::uint64_t(7),
                       msg = std::move(msg)]() { ++delivered; });
    sim.run();
    EXPECT_EQ(allocationCount() - before, 0u);
    EXPECT_EQ(delivered, 65);
}

TEST_F(SimAllocTest, OversizedCaptureFallsBackToOneAllocation)
{
    // Contract boundary: a capture beyond the inline buffer still
    // works, it just pays the InplaceFunction heap fallback.
    struct Big
    {
        char bytes[4 * kInplaceFunctionBufferSize] = {};
    };
    Simulator sim;
    Big big;
    big.bytes[0] = 1;
    int sum = 0;
    const std::uint64_t before = allocationCount();
    sim.scheduleAfter(SimTime::usec(1),
                      [&sum, big]() { sum += big.bytes[0]; });
    EXPECT_GE(allocationCount() - before, 1u);
    sim.run();
    EXPECT_EQ(sum, 1);
}

} // namespace
} // namespace pc
