/** @file Unit tests for the multi-stage pipeline. */

#include <gtest/gtest.h>

#include "app/pipeline.h"

namespace pc {
namespace {

class PipelineTest : public testing::Test
{
  protected:
    PipelineTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim)
    {
    }

    MultiStageApp
    makeApp(int stages, int perStage = 1)
    {
        std::vector<StageSpec> specs;
        for (int i = 0; i < stages; ++i) {
            StageSpec s;
            s.name = "S" + std::to_string(i);
            s.initialInstances = perStage;
            s.initialLevel = 0;
            specs.push_back(s);
        }
        return MultiStageApp(&sim, &chip, &bus, "app", specs);
    }

    QueryPtr
    makeQuery(std::int64_t id, int stages, double secPerStage = 0.5)
    {
        std::vector<WorkDemand> demands(
            static_cast<std::size_t>(stages),
            WorkDemand{0.0, secPerStage});
        return std::make_shared<Query>(id, sim.now(), demands);
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
};

TEST_F(PipelineTest, LaunchesInitialLayout)
{
    auto app = makeApp(3, 2);
    EXPECT_EQ(app.numStages(), 3);
    EXPECT_EQ(app.allInstances().size(), 6u);
    EXPECT_EQ(chip.numAllocated(), 6);
    EXPECT_EQ(app.stage(0).name(), "S0");
}

TEST_F(PipelineTest, QueryFlowsThroughAllStages)
{
    auto app = makeApp(3);
    QueryPtr finished;
    app.setCompletionSink([&](QueryPtr q) { finished = std::move(q); });
    app.submit(makeQuery(1, 3, 0.5));
    sim.run();
    ASSERT_TRUE(finished);
    EXPECT_TRUE(finished->completed());
    ASSERT_EQ(finished->hops().size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(finished->hops()[static_cast<std::size_t>(i)]
                      .stageIndex, i);
    EXPECT_NEAR(finished->endToEnd().toSec(), 1.5, 1e-6);
}

TEST_F(PipelineTest, StagesOverlapAcrossQueries)
{
    // With one instance per stage, two queries pipeline: total time is
    // 4 x 0.5 s, not 6 x 0.5 s.
    auto app = makeApp(3);
    app.submit(makeQuery(1, 3, 0.5));
    app.submit(makeQuery(2, 3, 0.5));
    sim.run();
    EXPECT_EQ(app.completed(), 2u);
    EXPECT_NEAR(sim.now().toSec(), 2.0, 1e-6);
}

TEST_F(PipelineTest, CountsSubmittedCompletedInFlight)
{
    auto app = makeApp(2);
    app.submit(makeQuery(1, 2));
    app.submit(makeQuery(2, 2));
    EXPECT_EQ(app.submitted(), 2u);
    EXPECT_EQ(app.completed(), 0u);
    EXPECT_EQ(app.inFlight(), 2u);
    sim.run();
    EXPECT_EQ(app.completed(), 2u);
    EXPECT_EQ(app.inFlight(), 0u);
}

TEST_F(PipelineTest, ReportsToEndpointOnCompletion)
{
    auto app = makeApp(2);
    std::vector<QueryPtr> reports;
    const EndpointId endpoint = bus.registerEndpoint(
        "cc", [&](const MessagePtr &msg) {
            auto &m = dynamic_cast<const QueryCompletedMessage &>(*msg);
            reports.push_back(m.query);
        });
    app.setReportEndpoint(endpoint);
    app.submit(makeQuery(7, 2));
    sim.run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0]->id(), 7);
    EXPECT_EQ(reports[0]->hops().size(), 2u);
}

TEST_F(PipelineTest, NoReportWithoutEndpoint)
{
    auto app = makeApp(1);
    app.submit(makeQuery(1, 1));
    sim.run();
    EXPECT_EQ(bus.messagesDelivered(), 0u);
}

TEST_F(PipelineTest, SinkSeesQueriesInCompletionOrder)
{
    auto app = makeApp(1, 2);
    std::vector<std::int64_t> order;
    app.setCompletionSink(
        [&](QueryPtr q) { order.push_back(q->id()); });
    // Query 2 is shorter and goes to the second (idle) instance.
    app.submit(std::make_shared<Query>(
        1, sim.now(), std::vector<WorkDemand>{{0.0, 1.0}}));
    app.submit(std::make_shared<Query>(
        2, sim.now(), std::vector<WorkDemand>{{0.0, 0.2}}));
    sim.run();
    EXPECT_EQ(order, (std::vector<std::int64_t>{2, 1}));
}

TEST_F(PipelineTest, SingleStageAppWorks)
{
    auto app = makeApp(1);
    app.submit(makeQuery(1, 1));
    sim.run();
    EXPECT_EQ(app.completed(), 1u);
}

TEST_F(PipelineTest, HopTimestampsAreConsistent)
{
    auto app = makeApp(3);
    QueryPtr finished;
    app.setCompletionSink([&](QueryPtr q) { finished = std::move(q); });
    app.submit(makeQuery(1, 3));
    sim.run();
    ASSERT_TRUE(finished);
    SimTime prev = finished->arrival();
    for (const auto &hop : finished->hops()) {
        EXPECT_GE(hop.enqueued, prev);
        EXPECT_GE(hop.started, hop.enqueued);
        EXPECT_GE(hop.finished, hop.started);
        prev = hop.finished;
    }
}

TEST(PipelineDeath, EmptyStageListIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    MessageBus bus(&sim);
    EXPECT_EXIT(MultiStageApp(&sim, &chip, &bus, "x", {}),
                testing::ExitedWithCode(1), "at least one stage");
}

TEST(PipelineDeath, LayoutBeyondChipIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    MessageBus bus(&sim);
    StageSpec a{"A", 1, 0, DispatchPolicy::JoinShortestQueue};
    StageSpec b{"B", 1, 0, DispatchPolicy::JoinShortestQueue};
    EXPECT_EXIT(MultiStageApp(&sim, &chip, &bus, "x", {a, b}),
                testing::ExitedWithCode(1), "no free core");
}

TEST(PipelineDeath, DemandStageMismatchPanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    MessageBus bus(&sim);
    StageSpec a{"A", 1, 0, DispatchPolicy::JoinShortestQueue};
    StageSpec b{"B", 1, 0, DispatchPolicy::JoinShortestQueue};
    MultiStageApp app(&sim, &chip, &bus, "x", {a, b});
    auto q = std::make_shared<Query>(
        1, SimTime::zero(), std::vector<WorkDemand>{{0.1, 0.1}});
    EXPECT_DEATH(app.submit(q), "stage demands");
}

} // namespace
} // namespace pc
