/** @file Tests for the queueing estimators and the static oracle. */

#include <cmath>

#include <gtest/gtest.h>

#include "app/service_instance.h"
#include "common/rng.h"
#include "core/oracle.h"
#include "core/queueing.h"
#include "exp/runner.h"

namespace pc {
namespace {

// ------------------------------------------------------------- queueing

TEST(Queueing, Utilization)
{
    EXPECT_DOUBLE_EQ(queueing::utilization(2.0, 1, 0.25), 0.5);
    EXPECT_DOUBLE_EQ(queueing::utilization(8.0, 4, 0.5), 1.0);
}

TEST(Queueing, MM1KnownValues)
{
    // rho = 0.5: W = rho/(1-rho) * s = 0.5 s for s = 0.5.
    EXPECT_NEAR(queueing::mm1WaitSec(1.0, 0.5), 0.5, 1e-12);
    // rho = 0.8, s = 1: W = 4.
    EXPECT_NEAR(queueing::mm1WaitSec(0.8, 1.0), 4.0, 1e-12);
}

TEST(Queueing, MG1DeterministicIsHalfOfExponential)
{
    const double exp = queueing::mg1WaitSec(0.8, 1.0, 1.0);
    const double det = queueing::mg1WaitSec(0.8, 1.0, 0.0);
    EXPECT_NEAR(det, exp / 2.0, 1e-12);
}

TEST(Queueing, UnstableQueueIsInfinite)
{
    EXPECT_TRUE(std::isinf(queueing::mm1WaitSec(2.0, 1.0)));
    EXPECT_TRUE(std::isinf(queueing::mmcWaitSec(5.0, 2, 0.5)));
    EXPECT_TRUE(std::isinf(queueing::mgcSojournSec(5.0, 2, 0.5, 0.5)));
}

TEST(Queueing, ErlangCKnownValues)
{
    // Single server: P(wait) = rho.
    EXPECT_NEAR(queueing::erlangC(0.7, 1, 1.0), 0.7, 1e-12);
    // c=2, a=1 (rho=0.5): C = 1/3.
    EXPECT_NEAR(queueing::erlangC(1.0, 2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Queueing, MMcReducesToMM1)
{
    EXPECT_NEAR(queueing::mmcWaitSec(0.6, 1, 1.0),
                queueing::mm1WaitSec(0.6, 1.0), 1e-12);
}

TEST(Queueing, PoolingReducesWaiting)
{
    // Same total capacity: 2 servers at s=1 vs 1 server at s=0.5,
    // lambda=1.2. The pooled system still waits less than two split
    // M/M/1 queues at lambda=0.6 each.
    const double pooled = queueing::mmcWaitSec(1.2, 2, 1.0);
    const double split = queueing::mm1WaitSec(0.6, 1.0);
    EXPECT_LT(pooled, split);
}

TEST(Queueing, MGcScalesWithVariability)
{
    const double low = queueing::mgcWaitSec(1.2, 2, 1.0, 0.2);
    const double high = queueing::mgcWaitSec(1.2, 2, 1.0, 1.0);
    EXPECT_LT(low, high);
    EXPECT_NEAR(high / low, (1 + 1.0) / (1 + 0.04), 1e-9);
}

TEST(Queueing, TheoryMatchesSimulationMM1)
{
    // Cross-validate the analytic estimator against the DES machinery.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const int core = *chip.acquireCore(0);
    double sumWait = 0.0;
    std::uint64_t n = 0;
    ServiceInstance inst(1, "S_1", 0, &sim, &chip, core,
                         [&](QueryPtr q) {
                             sumWait +=
                                 q->hops().back().queuing().toSec();
                             ++n;
                         });
    const double lambda = 1.4;
    const double mean = 0.5; // rho = 0.7
    Rng rng(41);
    SimTime t;
    for (int i = 0; i < 30000; ++i) {
        t += SimTime::sec(rng.exponential(1.0 / lambda));
        const double service = rng.exponential(mean);
        sim.scheduleAt(t, [&inst, &sim, i, service]() {
            inst.enqueue(std::make_shared<Query>(
                i, sim.now(),
                std::vector<WorkDemand>{{0.0, service}}));
        });
    }
    sim.run();
    const double theory = queueing::mm1WaitSec(lambda, mean);
    EXPECT_NEAR(sumWait / static_cast<double>(n), theory,
                0.1 * theory);
}

TEST(QueueingDeath, InvalidInputsPanic)
{
    EXPECT_DEATH((void)queueing::mm1WaitSec(-1.0, 0.5), "invalid");
    EXPECT_DEATH((void)queueing::mmcWaitSec(1.0, 0, 0.5), "invalid");
    EXPECT_DEATH((void)queueing::mg1WaitSec(1.0, 0.0, 0.5), "invalid");
}

// --------------------------------------------------------------- oracle

class OracleTest : public testing::Test
{
  protected:
    OracleTest()
        : sirius(WorkloadModel::sirius()),
          model(PowerModel::haswell()),
          oracle(&sirius, &model, Watts(13.56), 16)
    {
    }

    WorkloadModel sirius;
    PowerModel model;
    StaticOracle oracle;
};

TEST_F(OracleTest, SolutionRespectsBudgetAndCores)
{
    const auto r = oracle.solve(0.8);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.power.value(), 13.56 + 1e-9);
    int cores = 0;
    for (const auto &a : r.perStage)
        cores += a.instances;
    EXPECT_LE(cores, 16);
    EXPECT_EQ(r.perStage.size(), 3u);
    EXPECT_GT(r.evaluated, 0u);
}

TEST_F(OracleTest, SolutionIsStableAtItsRate)
{
    const auto r = oracle.solve(0.8);
    ASSERT_TRUE(r.feasible);
    EXPECT_FALSE(std::isinf(oracle.estimateLatency(r.perStage, 0.8)));
    EXPECT_NEAR(oracle.estimateLatency(r.perStage, 0.8),
                r.estimatedLatencySec, 1e-9);
}

TEST_F(OracleTest, HigherLoadNeedsMoreLatency)
{
    const auto low = oracle.solve(0.3);
    const auto high = oracle.solve(0.8);
    ASSERT_TRUE(low.feasible);
    ASSERT_TRUE(high.feasible);
    EXPECT_LT(low.estimatedLatencySec, high.estimatedLatencySec);
}

TEST_F(OracleTest, HighLoadBuysMoreQaCapacity)
{
    // QA dominates Sirius: at saturating load the oracle must give it
    // more total capacity (instances x speed) than at light load.
    const auto low = oracle.solve(0.2);
    const auto high = oracle.solve(0.8);
    ASSERT_TRUE(low.feasible && high.feasible);
    auto qaCapacity = [&](const OracleResult &r) {
        const auto &a = r.perStage[2];
        const double mean = sirius.stage(2).expectedServiceSecAt(
            model.ladder().freqAt(a.level).value());
        return a.instances / mean;
    };
    EXPECT_GT(qaCapacity(high), qaCapacity(low));
}

TEST_F(OracleTest, InfeasibleWhenBudgetTooSmall)
{
    // Not even one instance per stage at the lowest frequency fits.
    const StaticOracle tiny(&sirius, &model, Watts(3.0), 16);
    EXPECT_FALSE(tiny.solve(0.3).feasible);
}

TEST_F(OracleTest, InfeasibleWhenLoadExceedsAnyConfiguration)
{
    EXPECT_FALSE(oracle.solve(50.0).feasible);
}

TEST_F(OracleTest, EstimateMatchesSimulationSteadyState)
{
    // Deploy the oracle allocation with no runtime control at its
    // design rate; the measured mean latency should be in the same
    // ballpark as the M/G/c estimate (approximation + lognormal
    // service, so a loose factor-two band).
    const double lambda = 0.55;
    const auto r = oracle.solve(lambda);
    ASSERT_TRUE(r.feasible);

    Scenario sc = Scenario::mitigation(sirius, LoadLevel::Low,
                                       PolicyKind::StageAgnostic, 11);
    sc.load = LoadProfile::constant(lambda);
    sc.initialCounts.clear();
    sc.initialLevels.clear();
    for (const auto &a : r.perStage) {
        sc.initialCounts.push_back(a.instances);
        sc.initialLevels.push_back(a.level);
    }
    const RunResult run = ExperimentRunner().run(sc);
    EXPECT_GT(run.avgLatencySec, 0.5 * r.estimatedLatencySec);
    EXPECT_LT(run.avgLatencySec, 2.0 * r.estimatedLatencySec);
}

TEST_F(OracleTest, OracleCrushesEqualAllocationButNeedsOmniscience)
{
    // Two honest findings from the oracle study (see EXPERIMENTS.md):
    // (1) a queueing-model-guided exhaustive search beats the paper's
    // stage-agnostic equal allocation by a wide margin at saturating
    // load — the baseline the paper compares against is weak; and
    // (2) adaptive PowerChief, which needs neither the arrival rate
    // nor offline service profiles, lands in the oracle's ballpark.
    const double lambda = 1.05 * sirius.bottleneckCapacityAt(1800);
    const auto planned = oracle.solve(lambda);
    ASSERT_TRUE(planned.feasible);

    Scenario equalSplit = Scenario::mitigation(
        sirius, LoadLevel::Medium, PolicyKind::StageAgnostic, 13);
    Scenario oracleRun = equalSplit;
    oracleRun.initialCounts.clear();
    oracleRun.initialLevels.clear();
    for (const auto &a : planned.perStage) {
        oracleRun.initialCounts.push_back(a.instances);
        oracleRun.initialLevels.push_back(a.level);
    }
    Scenario chief = Scenario::mitigation(sirius, LoadLevel::Medium,
                                          PolicyKind::PowerChief, 13);

    const ExperimentRunner runner;
    const double equalAvg = runner.run(equalSplit).avgLatencySec;
    const double oracleAvg = runner.run(oracleRun).avgLatencySec;
    const double chiefAvg = runner.run(chief).avgLatencySec;

    EXPECT_LT(oracleAvg, equalAvg / 5.0);  // (1)
    EXPECT_LT(chiefAvg, 2.0 * oracleAvg);  // (2)
}

TEST(OracleDeath, FanOutWorkloadRejected)
{
    const WorkloadModel ws = WorkloadModel::webSearch();
    const PowerModel model = PowerModel::haswell();
    EXPECT_EXIT(StaticOracle(&ws, &model, Watts(50.0), 16),
                testing::ExitedWithCode(1), "pipeline stages only");
}

} // namespace
} // namespace pc
