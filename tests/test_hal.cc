/** @file Unit tests for the HAL: MSR space, cores, chip, cpufreq, RAPL. */

#include <gtest/gtest.h>

#include "hal/chip.h"
#include "hal/cpufreq.h"
#include "hal/msr.h"
#include "hal/rapl.h"

namespace pc {
namespace {

TEST(MsrEncoding, PerfCtlRoundTrip)
{
    for (int mhz = 1200; mhz <= 2400; mhz += 100)
        EXPECT_EQ(msr::mhzFromPerfCtl(msr::perfCtlFromMHz(mhz)), mhz);
}

TEST(MsrSpace, ReadUnwrittenIsZero)
{
    MsrSpace msr;
    EXPECT_EQ(msr.read(0, 0x123), 0u);
}

TEST(MsrSpace, WriteThenRead)
{
    MsrSpace msr;
    msr.write(2, 0x10, 0xdeadbeef);
    EXPECT_EQ(msr.read(2, 0x10), 0xdeadbeefu);
    // Per-cpu separation.
    EXPECT_EQ(msr.read(3, 0x10), 0u);
}

TEST(MsrSpace, WriteHookFires)
{
    MsrSpace msr;
    int seenCpu = -1;
    std::uint64_t seenVal = 0;
    msr.setWriteHook(0x199, [&](int cpu, std::uint32_t, std::uint64_t v) {
        seenCpu = cpu;
        seenVal = v;
    });
    msr.write(5, 0x199, 77);
    EXPECT_EQ(seenCpu, 5);
    EXPECT_EQ(seenVal, 77u);
    // Other registers don't trigger it.
    msr.write(5, 0x198, 88);
    EXPECT_EQ(seenVal, 77u);
}

TEST(MsrSpace, ReadHookOverridesStore)
{
    MsrSpace msr;
    msr.write(0, 0x20, 1);
    msr.setReadHook(0x20, [](int, std::uint32_t) {
        return std::uint64_t(42);
    });
    EXPECT_EQ(msr.read(0, 0x20), 42u);
}

class HalTest : public testing::Test
{
  protected:
    HalTest() : model(PowerModel::haswell()), chip(&sim, &model, 4) {}

    Simulator sim;
    PowerModel model;
    CmpChip chip;
};

TEST_F(HalTest, CoresStartOffline)
{
    for (int i = 0; i < chip.numCores(); ++i) {
        EXPECT_EQ(chip.core(i).state(), Core::State::Offline);
        EXPECT_FALSE(chip.core(i).online());
    }
    EXPECT_EQ(chip.numAllocated(), 0);
}

TEST_F(HalTest, AcquireBringsCoreOnlineAtLevel)
{
    const auto id = chip.acquireCore(6);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(chip.core(*id).state(), Core::State::Idle);
    EXPECT_EQ(chip.core(*id).level(), 6);
    EXPECT_EQ(chip.core(*id).frequency(), MHz(1800));
    EXPECT_EQ(chip.numAllocated(), 1);
}

TEST_F(HalTest, AcquireExhaustsCores)
{
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(chip.acquireCore(0).has_value());
    EXPECT_FALSE(chip.acquireCore(0).has_value());
}

TEST_F(HalTest, ReleaseMakesCoreReusable)
{
    const auto id = chip.acquireCore(0);
    chip.releaseCore(*id);
    EXPECT_EQ(chip.numAllocated(), 0);
    EXPECT_EQ(chip.core(*id).state(), Core::State::Offline);
    EXPECT_TRUE(chip.acquireCore(0).has_value());
}

TEST_F(HalTest, BusyEnergyIntegration)
{
    const auto id = chip.acquireCore(6);
    auto &core = chip.core(*id);
    core.setBusy(true);
    sim.runUntil(SimTime::sec(10));
    const double expect = model.activeWatts(6).value() * 10.0;
    EXPECT_NEAR(core.energy().value(), expect, 1e-6);
    EXPECT_EQ(core.busyTime(), SimTime::sec(10));
}

TEST_F(HalTest, IdleEnergyIntegration)
{
    const auto id = chip.acquireCore(6);
    sim.runUntil(SimTime::sec(10));
    const double expect = model.idleWatts(6).value() * 10.0;
    EXPECT_NEAR(chip.core(*id).energy().value(), expect, 1e-6);
    EXPECT_EQ(chip.core(*id).busyTime(), SimTime::zero());
}

TEST_F(HalTest, OfflineCoreDrawsNothing)
{
    sim.runUntil(SimTime::sec(10));
    EXPECT_DOUBLE_EQ(chip.core(0).energy().value(), 0.0);
    EXPECT_DOUBLE_EQ(chip.totalEnergy().value(), 0.0);
}

TEST_F(HalTest, EnergySplitAcrossFrequencyChange)
{
    const auto id = chip.acquireCore(0);
    auto &core = chip.core(*id);
    core.setBusy(true);
    sim.runUntil(SimTime::sec(5));
    core.setLevel(12);
    sim.runUntil(SimTime::sec(10));
    const double expect = model.activeWatts(0).value() * 5.0 +
        model.activeWatts(12).value() * 5.0;
    EXPECT_NEAR(core.energy().value(), expect, 1e-6);
}

TEST_F(HalTest, FreqChangeListenerSeesLevels)
{
    const auto id = chip.acquireCore(3);
    int from = -1;
    int to = -1;
    chip.core(*id).setFreqChangeListener([&](int f, int t) {
        from = f;
        to = t;
    });
    chip.core(*id).setLevel(9);
    EXPECT_EQ(from, 3);
    EXPECT_EQ(to, 9);
}

TEST_F(HalTest, SameLevelChangeIsNoOp)
{
    const auto id = chip.acquireCore(3);
    bool fired = false;
    chip.core(*id).setFreqChangeListener([&](int, int) { fired = true; });
    chip.core(*id).setLevel(3);
    EXPECT_FALSE(fired);
}

TEST_F(HalTest, TotalWattsSumsStates)
{
    const auto a = chip.acquireCore(6);
    const auto b = chip.acquireCore(6);
    chip.core(*a).setBusy(true);
    const double expect = model.activeWatts(6).value() +
        model.idleWatts(6).value();
    EXPECT_NEAR(chip.totalWatts().value(), expect, 1e-9);
    (void)b;
}

TEST_F(HalTest, CpufreqSetAndGet)
{
    const auto id = chip.acquireCore(0);
    CpufreqDriver cpufreq(&chip);
    cpufreq.setFrequency(*id, MHz(2100));
    EXPECT_EQ(cpufreq.getFrequency(*id), MHz(2100));
    EXPECT_EQ(chip.core(*id).level(), 9);
    cpufreq.setLevel(*id, 2);
    EXPECT_EQ(cpufreq.getLevel(*id), 2);
}

TEST_F(HalTest, CpufreqListsLadder)
{
    CpufreqDriver cpufreq(&chip);
    ASSERT_EQ(cpufreq.availableFrequencies().size(), 13u);
    EXPECT_EQ(cpufreq.availableFrequencies().front(), MHz(1200));
    EXPECT_EQ(cpufreq.availableFrequencies().back(), MHz(2400));
}

TEST_F(HalTest, CpufreqGoesThroughMsr)
{
    const auto id = chip.acquireCore(0);
    CpufreqDriver cpufreq(&chip);
    cpufreq.setFrequency(*id, MHz(2000));
    EXPECT_EQ(msr::mhzFromPerfCtl(
                  chip.msr().read(*id, msr::IA32_PERF_STATUS)),
              2000);
}

TEST_F(HalTest, RaplEnergyUnitDecoded)
{
    RaplReader rapl(&chip);
    EXPECT_DOUBLE_EQ(rapl.readEnergy().value(), 0.0);
}

TEST_F(HalTest, RaplWindowPowerMatchesModel)
{
    const auto id = chip.acquireCore(6);
    chip.core(*id).setBusy(true);
    RaplReader rapl(&chip);
    sim.runUntil(SimTime::sec(20));
    EXPECT_NEAR(rapl.windowPower().value(),
                model.activeWatts(6).value(), 0.01);
}

TEST_F(HalTest, RaplWindowResetsBetweenReads)
{
    const auto id = chip.acquireCore(6);
    chip.core(*id).setBusy(true);
    RaplReader rapl(&chip);
    sim.runUntil(SimTime::sec(10));
    (void)rapl.windowEnergy();
    const Joules w2 = rapl.windowEnergy();
    EXPECT_NEAR(w2.value(), 0.0, 1e-3);
}

TEST_F(HalTest, RaplZeroSpanReturnsZeroPower)
{
    RaplReader rapl(&chip);
    EXPECT_DOUBLE_EQ(rapl.windowPower().value(), 0.0);
}

TEST(HalDeath, ReleaseUnallocatedPanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    EXPECT_DEATH(chip.releaseCore(0), "unallocated");
}

TEST(HalDeath, ReleaseBusyCorePanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    const auto id = chip.acquireCore(0);
    chip.core(*id).setBusy(true);
    EXPECT_DEATH(chip.releaseCore(*id), "busy");
}

TEST(HalDeath, BusyWhileOfflinePanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    EXPECT_DEATH(chip.core(0).setBusy(true), "offline");
}

TEST(HalDeath, BadCoreIdPanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    EXPECT_DEATH((void)chip.core(2), "out of range");
}

TEST(HalDeath, ZeroCoresIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    EXPECT_EXIT(CmpChip(&sim, &model, 0), testing::ExitedWithCode(1),
                "at least one core");
}

class PerfCtlLevels : public testing::TestWithParam<int>
{
};

TEST_P(PerfCtlLevels, MsrWriteSetsExactLevel)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const auto id = chip.acquireCore(0);
    const int lvl = GetParam();
    const MHz freq = model.ladder().freqAt(lvl);
    chip.msr().write(*id, msr::IA32_PERF_CTL,
                     msr::perfCtlFromMHz(freq.value()));
    EXPECT_EQ(chip.core(*id).level(), lvl);
    EXPECT_EQ(chip.core(*id).frequency(), freq);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, PerfCtlLevels, testing::Range(0, 13));

} // namespace
} // namespace pc
