/**
 * @file
 * Cross-policy invariant suite: properties every PolicyKind must hold,
 * checked at every control decision point via the runner's interval
 * probe and across execution modes via the sweep engine.
 *
 *  - budget safety: instantaneous allocated power never exceeds the
 *    cap at any decision point;
 *  - ledger reconciliation: every live instance holds exactly one
 *    reservation at its actual DVFS level, there are no orphan
 *    reservations, and the allocated total is the sum of the modelled
 *    active power of the live instances;
 *  - stale-telemetry guard: instances excluded from the ranking as
 *    stale are never the subject of a boost/step-down/withdraw
 *    actuation in that interval;
 *  - determinism: runs are bit-identical (serialized RunResult bytes)
 *    between --jobs 1 and --jobs N, on a clean fabric and under a
 *    lossy FaultPlan.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace pc {
namespace {

Scenario
invariantScenario(PolicyKind policy, bool lossy, double durationSec)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::Medium, policy);
    sc.name = std::string("invariants/") + toString(policy) +
        (lossy ? "/lossy" : "/clean");
    sc.duration = SimTime::sec(durationSec);
    sc.warmup = SimTime::sec(durationSec / 5.0);
    // Knobs the QoS and fixed-stage policies require (harmless for the
    // rest): without them their constructors reject the scenario.
    sc.qosTargetSec = 6.0;
    sc.fixedStage = 0;
    if (lossy) {
        sc.faults.active = true;
        sc.faults.seed = 23;
        BusFaultRule bus;
        bus.dropRate = 0.03;
        bus.reorderRate = 0.1;
        bus.reorderJitterMax = SimTime::msec(5);
        sc.faults.bus.push_back(bus);
        sc.faults.telemetry.staleRate = 0.1;
        sc.faults.telemetry.truncateRate = 0.05;
        sc.faults.telemetry.perfCtlFailRate = 0.2;
        sc.wireReports = true;
        sc.control.staleWindow = SimTime::sec(60);
    }
    return sc;
}

/**
 * Budget safety + ledger reconciliation at one decision point. The
 * probe fires after the policy and withdraw monitor acted, so whatever
 * state they left behind is what the next interval runs on.
 */
void
checkBudgetAndLedger(const ControlContext &ctx)
{
    ASSERT_NE(ctx.budget, nullptr);
    const double cap = ctx.budget->cap().value();
    EXPECT_LE(ctx.budget->allocated().value(), cap + 1e-9)
        << "allocated power exceeds the cap at a decision point";
    EXPECT_GE(ctx.budget->headroom().value(), -1e-9);

    double modelled = 0.0;
    std::size_t live = 0;
    for (int s = 0; s < ctx.app->numStages(); ++s) {
        for (const ServiceInstance *inst :
             ctx.app->stage(s).instances()) {
            ++live;
            const int reserved = ctx.budget->levelOf(inst->id());
            EXPECT_EQ(reserved, inst->level())
                << "ledger level disagrees with instance "
                << inst->name();
            if (reserved >= 0)
                modelled +=
                    ctx.budget->model().activeWatts(reserved).value();
        }
    }
    // No orphan reservations: consumers == live instances, and the
    // allocated total reconciles to the modelled sum exactly.
    EXPECT_EQ(ctx.budget->numConsumers(), live);
    EXPECT_NEAR(ctx.budget->allocated().value(), modelled, 1e-6);
}

class PolicyInvariants : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyInvariants, BudgetCapAndLedgerAtEveryDecisionPoint)
{
    ExperimentRunner runner(/*recordTraces=*/true);
    int probes = 0;
    runner.setIntervalProbe([&](const ControlContext &ctx) {
        ++probes;
        checkBudgetAndLedger(ctx);
    });
    const RunResult result =
        runner.run(invariantScenario(GetParam(), false, 150.0));
    EXPECT_GT(probes, 0) << "control loop never ticked";
    EXPECT_GT(result.completed, 0u);
}

TEST_P(PolicyInvariants, StaleInstancesNeverActuatedUnderLossyFabric)
{
    ExperimentRunner runner(/*recordTraces=*/true);
    int probes = 0;
    std::size_t staleSeen = 0;
    std::size_t seenEvents = 0;
    runner.setIntervalProbe([&](const ControlContext &ctx) {
        ++probes;
        checkBudgetAndLedger(ctx);

        ASSERT_NE(ctx.identifier, nullptr);
        std::set<std::string> staleNames;
        for (const auto &skip : ctx.identifier->lastStaleSkips()) {
            ++staleSeen;
            for (int s = 0; s < ctx.app->numStages(); ++s)
                if (const ServiceInstance *inst =
                        ctx.app->stage(s).findInstance(
                            skip.instanceId))
                    staleNames.insert(inst->name());
        }
        ASSERT_NE(ctx.trace, nullptr);
        const auto &events = ctx.trace->events();
        for (std::size_t i = seenEvents; i < events.size(); ++i) {
            const TraceEvent &ev = events[i];
            if (ev.kind != TraceKind::FrequencyBoost &&
                ev.kind != TraceKind::FrequencyStepDown &&
                ev.kind != TraceKind::InstanceWithdraw)
                continue;
            EXPECT_EQ(staleNames.count(ev.subject), 0u)
                << toString(ev.kind) << " actuated stale instance "
                << ev.subject;
        }
        seenEvents = events.size();
    });
    const RunResult result =
        runner.run(invariantScenario(GetParam(), true, 150.0));
    EXPECT_GT(probes, 0) << "control loop never ticked";
    EXPECT_GT(result.completed, 0u);
    (void)staleSeen; // Zero skips is legal: staleness is stochastic.
}

TEST_P(PolicyInvariants, BitIdenticalAcrossJobsCleanAndLossy)
{
    const std::vector<Scenario> scenarios = {
        invariantScenario(GetParam(), false, 100.0),
        invariantScenario(GetParam(), true, 100.0),
    };
    const auto runWith = [&](int jobs) {
        SweepOptions options;
        options.jobs = jobs;
        options.useCache = false;
        options.recordTraces = true;
        options.collectAudit = true;
        SweepRunner sweep(options);
        std::vector<std::string> dumps;
        for (const RunResult &run : sweep.runAll(scenarios))
            dumps.push_back(runResultToJson(run).dump());
        return dumps;
    };
    const std::vector<std::string> serial = runWith(1);
    const std::vector<std::string> parallel = runWith(3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << scenarios[i].name
            << " diverged between --jobs 1 and --jobs 3";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::ValuesIn(allPolicyKinds()),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pc
