/** @file Tests for the JSON parser/serializer. */

#include <gtest/gtest.h>

#include "common/json.h"

namespace pc {
namespace {

JsonValue
parseOk(const std::string &text)
{
    const auto result = parseJson(text);
    EXPECT_TRUE(result.ok()) << result.error << " at "
                             << result.errorPos << " in: " << text;
    return result.ok() ? *result.value : JsonValue();
}

void
parseFails(const std::string &text)
{
    EXPECT_FALSE(parseJson(text).ok()) << "should reject: " << text;
}

TEST(Json, Literals)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
}

TEST(Json, Numbers)
{
    EXPECT_DOUBLE_EQ(parseOk("0").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(parseOk("-13.5").asNumber(), -13.5);
    EXPECT_DOUBLE_EQ(parseOk("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(parseOk("2.5E-2").asNumber(), 0.025);
}

TEST(Json, Strings)
{
    EXPECT_EQ(parseOk("\"hello\"").asString(), "hello");
    EXPECT_EQ(parseOk("\"\"").asString(), "");
    EXPECT_EQ(parseOk("\"a\\nb\\t\\\"c\\\\\"").asString(),
              "a\nb\t\"c\\");
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9"); // é
}

TEST(Json, Arrays)
{
    const auto v = parseOk("[1, 2, 3]");
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(parseOk("[]").asArray().empty());
    EXPECT_EQ(parseOk("[[1],[2,3]]").asArray()[1].asArray().size(), 2u);
}

TEST(Json, Objects)
{
    const auto v = parseOk(R"({"a": 1, "b": {"c": true}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.0);
    EXPECT_TRUE(v.find("b")->find("c")->asBool());
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_TRUE(parseOk("{}").asObject().empty());
}

TEST(Json, WhitespaceTolerated)
{
    const auto v = parseOk("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
    EXPECT_EQ(v.find("a")->asArray().size(), 2u);
}

TEST(Json, TypedGettersWithDefaults)
{
    const auto v = parseOk(R"({"n": 2.5, "s": "x", "b": true})");
    EXPECT_DOUBLE_EQ(v.numberOr("n", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(v.stringOr("s", "d"), "x");
    EXPECT_EQ(v.stringOr("missing", "d"), "d");
    EXPECT_TRUE(v.boolOr("b", false));
    EXPECT_TRUE(v.boolOr("missing", true));
    // Wrong-typed fields fall back too.
    EXPECT_DOUBLE_EQ(v.numberOr("s", 9.0), 9.0);
}

TEST(Json, RejectsMalformedInput)
{
    parseFails("");
    parseFails("{");
    parseFails("[1,");
    parseFails("[1 2]");
    parseFails(R"({"a" 1})");
    parseFails(R"({"a": })");
    parseFails("tru");
    parseFails("\"unterminated");
    parseFails("01x");
    parseFails("nan");
    parseFails("[1] trailing");
    parseFails(R"({"a": 1,})");
    parseFails("\"bad \\q escape\"");
    parseFails("\"\\u12\"");
}

TEST(Json, ErrorPositionReported)
{
    const auto result = parseJson("[1, 2, oops]");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.errorPos, 7u);
}

TEST(Json, DumpRoundTrip)
{
    const std::string text =
        R"({"arr":[1,2.5,true,null],"name":"pc","nested":{"x":-3}})";
    const auto v = parseOk(text);
    // dump() -> parse() -> dump() is a fixed point.
    const auto v2 = parseOk(v.dump());
    EXPECT_EQ(v.dump(), v2.dump());
    EXPECT_EQ(v2.find("name")->asString(), "pc");
}

TEST(Json, DumpEscapesStrings)
{
    const JsonValue v(std::string("a\"b\\c\nd"));
    EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, DumpIntegersCleanly)
{
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

TEST(JsonDeath, WrongKindAccessPanics)
{
    const JsonValue v(1.0);
    EXPECT_DEATH((void)v.asString(), "not a string");
    EXPECT_DEATH((void)v.asArray(), "not an array");
    EXPECT_DEATH((void)JsonValue("x").asNumber(), "not a number");
}

} // namespace
} // namespace pc
