/**
 * @file
 * The sharded engine's core guarantee, tested end to end: a scenario
 * with node groups produces bit-identical results and artifacts at ANY
 * worker count — clean or under a lossy fault plan, serial or through
 * the parallel sweep pool. Plus unit tests of the conservative
 * time-window engine itself (sim/sharded_engine.h) and of the cache-key
 * treatment of the topology knobs.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/sweep.h"
#include "obs/telemetry.h"
#include "sim/sharded_engine.h"

namespace pc {
namespace {

// ------------------------------------------------------ ShardedEngine

TEST(ShardedEngine, DirectSchedulingRunsToDeadline)
{
    ShardedEngine engine(2, SimTime::msec(10));
    std::vector<int> order;
    engine.shard(0).scheduleAt(SimTime::msec(5),
                               [&order]() { order.push_back(0); });
    engine.shard(1).scheduleAt(SimTime::msec(7),
                               [&order]() { order.push_back(1); });
    engine.run(SimTime::msec(20), 1);
    EXPECT_EQ(order.size(), 2u);
    EXPECT_EQ(engine.now(), SimTime::msec(20));
    EXPECT_EQ(engine.shard(0).now(), SimTime::msec(20));
    EXPECT_EQ(engine.shard(1).now(), SimTime::msec(20));
    EXPECT_EQ(engine.crossShardEvents(), 0u);
}

TEST(ShardedEngine, CrossShardPostDeliversAtLookahead)
{
    const SimTime lookahead = SimTime::msec(10);
    ShardedEngine engine(2, lookahead);
    SimTime delivered = SimTime::zero();
    // At t=3ms shard 0 posts to shard 1 with the minimum legal delay
    // (the lookahead): the message crosses one window barrier and runs
    // on shard 1's own event loop at exactly t=13ms.
    engine.shard(0).scheduleAt(SimTime::msec(3), [&]() {
        engine.post(0, 1, engine.shard(0).now() + lookahead, [&]() {
            delivered = engine.shard(1).now();
        });
    });
    engine.run(SimTime::msec(50), 2);
    EXPECT_EQ(delivered, SimTime::msec(13));
    EXPECT_EQ(engine.crossShardEvents(), 1u);
}

TEST(ShardedEngine, SameShardPostSchedulesDirectly)
{
    ShardedEngine engine(2, SimTime::msec(10));
    bool ran = false;
    // from == to bypasses the mailboxes entirely, so sub-lookahead
    // delays are legal (it is a local event).
    engine.shard(0).scheduleAt(SimTime::msec(1), [&]() {
        engine.post(0, 0, SimTime::msec(2), [&]() { ran = true; });
    });
    engine.run(SimTime::msec(5), 1);
    EXPECT_TRUE(ran);
    EXPECT_EQ(engine.crossShardEvents(), 0u);
}

TEST(ShardedEngine, DeliveryOrderIndependentOfWorkerCount)
{
    // Two shards spray messages at each other every window; the
    // receive order on each shard must be identical at 1 and 2
    // workers. Messages from different sources landing at one dst in
    // the same window drain in ascending src order.
    const auto runOnce = [](int workers) {
        const SimTime lookahead = SimTime::msec(10);
        ShardedEngine engine(3, lookahead);
        std::vector<std::string> log;
        for (int src = 0; src < 3; ++src) {
            engine.shard(src).schedulePeriodic(
                SimTime::msec(1), SimTime::msec(7), [&engine, src]() {
                    const int dst = (src + 1) % 3;
                    engine.post(
                        src, dst,
                        engine.shard(src).now() + SimTime::msec(10),
                        []() {});
                });
        }
        engine.shard(1).schedulePeriodic(
            SimTime::msec(2), SimTime::msec(5), [&engine, &log]() {
                log.push_back("tick@" +
                              std::to_string(
                                  engine.shard(1).now().toUsec()));
            });
        engine.run(SimTime::msec(100), workers);
        log.push_back("events=" +
                      std::to_string(engine.crossShardEvents()));
        return log;
    };
    const auto serial = runOnce(1);
    const auto parallel = runOnce(2);
    const auto oversubscribed = runOnce(8); // workers > shards clamps
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, oversubscribed);
}

// ------------------------------------------- sharded run determinism

/** Small but real sharded scenario: 4 groups, cross-group spray. */
Scenario
shardedScenario(bool withFaults)
{
    Scenario sc = Scenario::millionQuery(/*nodeGroups=*/4,
                                         /*totalQueries=*/4000,
                                         /*durationSec=*/10.0,
                                         /*seed=*/777);
    if (withFaults) {
        sc.faults.active = true;
        sc.faults.seed = 99;
        BusFaultRule lossy;
        lossy.endpoint = "*";
        lossy.dropRate = 0.05;
        lossy.duplicateRate = 0.02;
        lossy.reorderRate = 0.1;
        sc.faults.bus.push_back(lossy);
        sc.name += "/lossy";
    }
    return sc;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class ShardedDeterminism : public ::testing::TestWithParam<bool>
{
};

TEST_P(ShardedDeterminism, ResultBitIdenticalAtAnyWorkerCount)
{
    const Scenario sc = shardedScenario(GetParam());
    std::string reference;
    for (const int workers : {1, 2, 4, 8}) {
        ExperimentRunner runner(/*recordTraces=*/true);
        runner.setShards(workers);
        const RunResult result = runner.run(sc);
        EXPECT_GT(result.completed, 0u);
        EXPECT_GE(result.submitted, result.completed);
        const std::string json = runResultToJson(result).dump();
        if (reference.empty())
            reference = json;
        else
            EXPECT_EQ(json, reference)
                << "diverged at " << workers << " workers";
    }
}

TEST_P(ShardedDeterminism, ArtifactsByteIdenticalAtAnyWorkerCount)
{
    const Scenario sc = shardedScenario(GetParam());
    const std::string dir = ::testing::TempDir();
    const std::string tag = GetParam() ? "lossy" : "clean";
    std::string refTrace, refAudit, refTimeseries, refCritpath,
        refMetrics;
    for (const int workers : {1, 4}) {
        TelemetryConfig telemetry;
        const std::string base =
            dir + "/sharded_" + tag + std::to_string(workers);
        telemetry.traceOut = base + ".trace.json";
        telemetry.metricsOut = base + ".metrics.json";
        telemetry.auditOut = base + ".audit.json";
        telemetry.timeseriesOut = base + ".timeseries.json";
        telemetry.critpathOut = base + ".critpath.json";
        SloConfig slo;
        slo.enabled = true;
        ExperimentRunner runner(/*recordTraces=*/false,
                                SimTime::sec(5),
                                /*attribution=*/false,
                                /*collectAudit=*/false, slo);
        runner.setShards(workers);
        const RunResult result = runner.run(sc, &telemetry);
        EXPECT_GT(result.completed, 0u);
        const std::string trace = slurp(telemetry.traceOut);
        const std::string metrics = slurp(telemetry.metricsOut);
        const std::string audit = slurp(telemetry.auditOut);
        const std::string timeseries = slurp(telemetry.timeseriesOut);
        const std::string critpath = slurp(telemetry.critpathOut);
        EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
        EXPECT_NE(audit.find("powerchief-sharded-v1"),
                  std::string::npos);
        EXPECT_NE(timeseries.find("\"slo\""), std::string::npos);
        if (refTrace.empty()) {
            refTrace = trace;
            refMetrics = metrics;
            refAudit = audit;
            refTimeseries = timeseries;
            refCritpath = critpath;
        } else {
            EXPECT_EQ(trace, refTrace);
            EXPECT_EQ(metrics, refMetrics);
            EXPECT_EQ(audit, refAudit);
            EXPECT_EQ(timeseries, refTimeseries);
            EXPECT_EQ(critpath, refCritpath);
        }
    }
}

TEST_P(ShardedDeterminism, SweepPoolJobsDoNotChangeResults)
{
    // The outer sweep pool (--jobs) and the inner shard workers
    // (--shards) compose: any (jobs, shards) pair gives the same
    // bytes. Two sweep points (different seeds) keep the pool busy.
    const bool withFaults = GetParam();
    std::vector<Scenario> points;
    points.push_back(shardedScenario(withFaults));
    Scenario other = shardedScenario(withFaults);
    other.seed = 1234;
    other.name += "/seed1234";
    points.push_back(other);

    std::string reference;
    for (const int jobs : {1, 3}) {
        for (const int shards : {1, 2}) {
            SweepOptions options;
            options.jobs = jobs;
            options.shards = shards;
            options.useCache = false;
            SweepRunner sweep(options);
            const std::vector<RunResult> results =
                sweep.runAll(points);
            std::string json;
            for (const RunResult &result : results)
                json += runResultToJson(result).dump() + "\n";
            if (reference.empty())
                reference = json;
            else
                EXPECT_EQ(json, reference)
                    << "diverged at jobs=" << jobs
                    << " shards=" << shards;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(CleanAndLossy, ShardedDeterminism,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "lossy" : "clean";
                         });

// ------------------------------------------------------ cache identity

TEST(ShardedCacheKey, TopologyIsPartOfTheScenarioIdentity)
{
    Scenario base = shardedScenario(false);
    const auto canonical = scenarioCanonical(base);
    ASSERT_TRUE(canonical.has_value());
    EXPECT_NE(canonical->find("|nodes:"), std::string::npos);

    Scenario moreGroups = base;
    moreGroups.nodeGroups = 8;
    EXPECT_NE(*scenarioCanonical(moreGroups), *canonical);

    Scenario moreSpray = base;
    moreSpray.remoteFraction = 0.5;
    EXPECT_NE(*scenarioCanonical(moreSpray), *canonical);

    Scenario slowerWire = base;
    slowerWire.interNodeLatency = SimTime::msec(50);
    EXPECT_NE(*scenarioCanonical(slowerWire), *canonical);

    // Single-node scenarios keep their historical canonical (no
    // "|nodes:" section) so pre-existing cache entries stay valid.
    Scenario singleNode = base;
    singleNode.nodeGroups = 1;
    EXPECT_EQ(scenarioCanonical(singleNode)->find("|nodes:"),
              std::string::npos);
}

TEST(ShardedCacheKey, WorkerCountIsNotPartOfTheSweepKey)
{
    // --shards is a pure execution knob: two sweeps differing only in
    // shards must share cache entries. Exercise through the real
    // cache: run at shards=1, then hit at shards=8.
    const std::string dir =
        ::testing::TempDir() + "/sharded_cache_test";
    std::filesystem::remove_all(dir); // stale entries from prior runs
    const Scenario sc = shardedScenario(false);
    SweepOptions options;
    options.useCache = true;
    options.cacheDir = dir;
    options.shards = 1;
    SweepRunner first(options);
    const RunResult miss = first.runOne(sc);
    EXPECT_EQ(first.report().cacheMisses, 1u);

    options.shards = 8;
    SweepRunner second(options);
    const RunResult hit = second.runOne(sc);
    EXPECT_EQ(second.report().cacheHits, 1u);
    EXPECT_EQ(runResultToJson(hit).dump(),
              runResultToJson(miss).dump());
}

// ------------------------------------------------------- scenario API

TEST(MillionQueryScenario, ShapeAndDefaults)
{
    const Scenario sc = Scenario::millionQuery();
    EXPECT_EQ(sc.nodeGroups, 8);
    EXPECT_GT(sc.remoteFraction, 0.0);
    EXPECT_GT(sc.interNodeLatency, SimTime::zero());
    EXPECT_EQ(sc.workload.name(), "microservice");
    EXPECT_EQ(sc.name, "mega/8x1000000q");
    EXPECT_FALSE(sc.load.canonical().empty());
}

} // namespace
} // namespace pc
