/** @file Unit tests for the CommandCenter wiring and control loop. */

#include <gtest/gtest.h>

#include "core/command_center.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

class CenterTest : public testing::Test
{
  protected:
    CenterTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 16),
          bus(&sim), workload(WorkloadModel::sirius())
    {
        app = std::make_unique<MultiStageApp>(
            &sim, &chip, &bus, "sirius",
            workload.layout(1, model.ladder().midLevel()));
        book = OfflineProfiler(50).profileWorkload(workload, model, 1);
        budget = std::make_unique<PowerBudget>(Watts(13.56), &model);
    }

    std::unique_ptr<CommandCenter>
    makeCenter(std::unique_ptr<ControlPolicy> policy, ControlConfig cfg)
    {
        return std::make_unique<CommandCenter>(
            &sim, &bus, &chip, app.get(), budget.get(), &book, cfg,
            std::move(policy));
    }

    void
    drive(double qps, SimTime until, std::uint64_t seed = 3)
    {
        gen = std::make_unique<LoadGenerator>(
            &sim, app.get(), &workload, LoadProfile::constant(qps),
            seed, model.ladder().freqAt(0).value());
        gen->start(until);
        sim.runUntil(until);
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    WorkloadModel workload;
    std::unique_ptr<MultiStageApp> app;
    SpeedupBook book;
    std::unique_ptr<PowerBudget> budget;
    std::unique_ptr<LoadGenerator> gen;
};

TEST_F(CenterTest, ReservesBudgetForInitialLayout)
{
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             ControlConfig{});
    EXPECT_EQ(budget->numConsumers(), 3u);
    EXPECT_NEAR(budget->allocated().value(), 13.56, 0.01);
}

TEST_F(CenterTest, RegistersNamedEndpoint)
{
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             ControlConfig{});
    ASSERT_TRUE(bus.lookup("command-center/sirius").has_value());
    EXPECT_EQ(*bus.lookup("command-center/sirius"),
              center->endpoint());
}

TEST_F(CenterTest, EndpointFreedOnDestruction)
{
    makeCenter(std::make_unique<StageAgnosticPolicy>(),
               ControlConfig{});
    EXPECT_FALSE(bus.lookup("command-center/sirius").has_value());
}

TEST_F(CenterTest, ObservesCompletedQueries)
{
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             ControlConfig{});
    center->start();
    drive(0.2, SimTime::sec(60));
    EXPECT_GT(center->queriesObserved(), 0u);
    EXPECT_EQ(center->queriesObserved(), app->completed());
    EXPECT_FALSE(center->latencyWindow().empty());
}

TEST_F(CenterTest, TicksEveryAdjustInterval)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    center->start();
    sim.runUntil(SimTime::sec(55));
    EXPECT_EQ(center->intervalsRun(), 5u);
}

TEST_F(CenterTest, StopHaltsTheLoop)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    center->start();
    sim.runUntil(SimTime::sec(25));
    center->stop();
    sim.runUntil(SimTime::sec(100));
    EXPECT_EQ(center->intervalsRun(), 2u);
}

TEST_F(CenterTest, StartIsIdempotent)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    center->start();
    center->start();
    sim.runUntil(SimTime::sec(25));
    EXPECT_EQ(center->intervalsRun(), 2u);
}

TEST_F(CenterTest, IntervalCallbackSeesRanking)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    std::size_t rankedSize = 0;
    center->setIntervalCallback(
        [&](const ControlContext &ctx) { rankedSize = ctx.ranked.size(); });
    center->start();
    drive(0.2, SimTime::sec(30));
    EXPECT_EQ(rankedSize, 3u);
}

TEST_F(CenterTest, PowerChiefBoostsUnderLoad)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    auto center = makeCenter(std::make_unique<PowerChiefPolicy>(), cfg);
    center->start();
    // Saturating load: the QA stage must get boosted somehow.
    drive(1.0, SimTime::sec(200));
    const auto &policy =
        dynamic_cast<const PowerChiefPolicy &>(center->policy());
    EXPECT_GT(policy.frequencyBoosts() + policy.instanceBoosts(), 0u);
}

TEST_F(CenterTest, WithdrawGatedByConfig)
{
    // enableWithdraw=false: extra idle instance stays forever.
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    cfg.withdrawInterval = SimTime::sec(30);
    cfg.enableWithdraw = false;
    budget = std::make_unique<PowerBudget>(Watts(100.0), &model);
    auto *extra = app->stage(0).launchInstance(0);
    (void)extra;
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    center->start();
    drive(0.05, SimTime::sec(200));
    EXPECT_EQ(app->stage(0).numLiveInstances(), 2u);
}

TEST_F(CenterTest, WithdrawRemovesIdleInstanceWhenEnabled)
{
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    cfg.withdrawInterval = SimTime::sec(30);
    cfg.enableWithdraw = true;
    budget = std::make_unique<PowerBudget>(Watts(100.0), &model);
    auto *extra = app->stage(0).launchInstance(0);
    (void)extra;
    auto center = makeCenter(std::make_unique<StageAgnosticPolicy>(),
                             cfg);
    center->start();
    // Load low enough that one ASR instance is < 20% utilized.
    drive(0.05, SimTime::sec(200));
    EXPECT_EQ(app->stage(0).numLiveInstances(), 1u);
}

TEST(CenterDeath, OverBudgetLayoutIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 16);
    MessageBus bus(&sim);
    const WorkloadModel workload = WorkloadModel::sirius();
    MultiStageApp app(&sim, &chip, &bus, "sirius",
                      workload.layout(2, model.ladder().midLevel()));
    SpeedupBook book =
        OfflineProfiler(20).profileWorkload(workload, model, 1);
    PowerBudget budget(Watts(13.56), &model);
    EXPECT_EXIT(CommandCenter(&sim, &bus, &chip, &app, &budget, &book,
                              ControlConfig{},
                              std::make_unique<StageAgnosticPolicy>()),
                testing::ExitedWithCode(1), "exceeds the power budget");
}

TEST(CenterDeath, NullPolicyIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 16);
    MessageBus bus(&sim);
    const WorkloadModel workload = WorkloadModel::sirius();
    MultiStageApp app(&sim, &chip, &bus, "sirius",
                      workload.layout(1, 0));
    SpeedupBook book =
        OfflineProfiler(20).profileWorkload(workload, model, 1);
    PowerBudget budget(Watts(13.56), &model);
    EXPECT_EXIT(CommandCenter(&sim, &bus, &chip, &app, &budget, &book,
                              ControlConfig{}, nullptr),
                testing::ExitedWithCode(1), "policy");
}

} // namespace
} // namespace pc
