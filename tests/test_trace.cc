/** @file Tests for the decision trace and interference model. */

#include <sstream>

#include <gtest/gtest.h>

#include "core/command_center.h"
#include "core/trace.h"
#include "exp/runner.h"
#include "obs/telemetry.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

TEST(DecisionTrace, RecordsAndCounts)
{
    DecisionTrace trace;
    trace.record(SimTime::sec(1), TraceKind::FrequencyBoost, "QA_1", 9);
    trace.record(SimTime::sec(2), TraceKind::InstanceLaunch, "QA_2", 0);
    trace.record(SimTime::sec(3), TraceKind::FrequencyBoost, "ASR_1",
                 12);
    EXPECT_EQ(trace.events().size(), 3u);
    EXPECT_EQ(trace.count(TraceKind::FrequencyBoost), 2u);
    EXPECT_EQ(trace.count(TraceKind::InstanceLaunch), 1u);
    EXPECT_EQ(trace.count(TraceKind::InstanceWithdraw), 0u);
    EXPECT_EQ(trace.events()[0].subject, "QA_1");
    EXPECT_DOUBLE_EQ(trace.events()[0].value, 9.0);
}

TEST(DecisionTrace, CapEvictsOldestButKeepsCounts)
{
    DecisionTrace trace(3);
    for (int i = 0; i < 5; ++i)
        trace.record(SimTime::sec(i), TraceKind::PowerRecycle,
                     "I" + std::to_string(i), i);
    EXPECT_EQ(trace.events().size(), 3u);
    EXPECT_EQ(trace.events().front().subject, "I2");
    EXPECT_EQ(trace.count(TraceKind::PowerRecycle), 5u);
    EXPECT_EQ(trace.dropped(), 2u);
}

TEST(DecisionTrace, CsvAfterEvictionDumpsOnlyRetainedInOrder)
{
    DecisionTrace trace(2);
    for (int i = 0; i < 4; ++i)
        trace.record(SimTime::sec(10 + i), TraceKind::FrequencyBoost,
                     "I" + std::to_string(i), i);
    std::ostringstream out;
    trace.writeCsv(out);
    const std::string csv = out.str();
    // Evicted events are gone from the dump...
    EXPECT_EQ(csv.find("I0"), std::string::npos);
    EXPECT_EQ(csv.find("I1"), std::string::npos);
    // ...the survivors appear, oldest first.
    const std::size_t second = csv.find("I2");
    const std::size_t third = csv.find("I3");
    ASSERT_NE(second, std::string::npos);
    ASSERT_NE(third, std::string::npos);
    EXPECT_LT(second, third);
}

TEST(DecisionTrace, LastEnumKindCountsCorrectly)
{
    // Guards the TraceKind::Count sentinel: the final real kind must
    // land in the last counts_ slot, not out of bounds.
    DecisionTrace trace;
    const auto last = static_cast<TraceKind>(kNumTraceKinds - 1);
    trace.record(SimTime::sec(1), last, "x", 0);
    EXPECT_EQ(trace.count(last), 1u);
    for (std::size_t k = 0; k + 1 < kNumTraceKinds; ++k)
        EXPECT_EQ(trace.count(static_cast<TraceKind>(k)), 0u);
    EXPECT_STRNE(toString(last), "");
}

TEST(DecisionTrace, ForwardsRecordsIntoTelemetry)
{
    TelemetryConfig cfg;
    cfg.traceOut = "unused.json"; // enables tracing; never written
    Telemetry telemetry(cfg);

    DecisionTrace trace;
    trace.setTelemetry(&telemetry);
    trace.record(SimTime::sec(5), TraceKind::FrequencyBoost, "QA_1", 9);
    trace.record(SimTime::sec(6), TraceKind::PowerRecycle, "ASR_1", 1.5);
    trace.record(SimTime::sec(7), TraceKind::PowerRecycle, "ASR_1", 0.5);

    MetricsRegistry &metrics = telemetry.metrics();
    EXPECT_DOUBLE_EQ(
        metrics.counter("decision.freq-boost_total").value(), 1.0);
    EXPECT_DOUBLE_EQ(
        metrics.counter("decision.power-recycle_total").value(), 2.0);
    EXPECT_DOUBLE_EQ(
        metrics.counter("power.recycled_watts_total").value(), 2.0);
    // One instant event per decision on the control track.
    EXPECT_EQ(telemetry.trace().numEvents(), 3u);

    // Detaching stops the forwarding but keeps local counts.
    trace.setTelemetry(nullptr);
    trace.record(SimTime::sec(8), TraceKind::FrequencyBoost, "QA_1", 10);
    EXPECT_EQ(telemetry.trace().numEvents(), 3u);
    EXPECT_EQ(trace.count(TraceKind::FrequencyBoost), 2u);
}

TEST(DecisionTrace, CsvDump)
{
    DecisionTrace trace;
    trace.record(SimTime::sec(25), TraceKind::InstanceWithdraw,
                 "IMM_2", 0);
    std::ostringstream out;
    trace.writeCsv(out);
    EXPECT_NE(out.str().find("time_sec,kind,subject,value"),
              std::string::npos);
    EXPECT_NE(out.str().find("instance-withdraw"), std::string::npos);
    EXPECT_NE(out.str().find("IMM_2"), std::string::npos);
}

TEST(DecisionTrace, Clear)
{
    DecisionTrace trace;
    trace.record(SimTime::sec(1), TraceKind::IntervalSkipped, "x", 0);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
    EXPECT_EQ(trace.count(TraceKind::IntervalSkipped), 0u);
}

TEST(DecisionTraceDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT(DecisionTrace(0), testing::ExitedWithCode(1),
                "capacity");
}

TEST(DecisionTrace, CommandCenterRecordsBoosts)
{
    // A saturated Sirius run must leave a non-empty audit trail whose
    // counts match the policy's own counters.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 16);
    MessageBus bus(&sim);
    const WorkloadModel sirius = WorkloadModel::sirius();
    MultiStageApp app(&sim, &chip, &bus, "sirius",
                      sirius.layout(1, model.ladder().midLevel()));
    const SpeedupBook book =
        OfflineProfiler(40).profileWorkload(sirius, model, 1);
    PowerBudget budget(Watts(13.56), &model);
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    cfg.enableWithdraw = true;
    cfg.withdrawInterval = SimTime::sec(40);
    CommandCenter center(&sim, &bus, &chip, &app, &budget, &book, cfg,
                         std::make_unique<PowerChiefPolicy>());
    center.start();
    LoadGenerator gen(&sim, &app, &sirius, LoadProfile::constant(0.9),
                      3, model.ladder().freqAt(0).value());
    gen.start(SimTime::sec(300));
    sim.runUntil(SimTime::sec(300));

    const auto &policy =
        dynamic_cast<const PowerChiefPolicy &>(center.policy());
    const auto &trace = center.trace();
    EXPECT_EQ(trace.count(TraceKind::FrequencyBoost),
              policy.frequencyBoosts());
    EXPECT_EQ(trace.count(TraceKind::InstanceLaunch),
              policy.instanceBoosts());
    EXPECT_GT(trace.count(TraceKind::FrequencyBoost) +
                  trace.count(TraceKind::InstanceLaunch),
              0u);
    // Funding those boosts required recycling.
    EXPECT_GT(trace.count(TraceKind::PowerRecycle), 0u);
    // Timestamps are ordered.
    for (std::size_t i = 1; i < trace.events().size(); ++i)
        EXPECT_LE(trace.events()[i - 1].t, trace.events()[i].t);
}

// ------------------------------------------------------- interference

TEST(Interference, FactorMath)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 6);
    chip.setInterference({0.05, 2});
    for (int i = 0; i < 5; ++i) {
        const auto id = chip.acquireCore(0);
        chip.core(*id).setBusy(true);
    }
    // Core 5 sees 5 busy others, 2 free -> 3 contending.
    EXPECT_DOUBLE_EQ(chip.interferenceFactor(5), 1.15);
    // A busy core does not contend with itself: core 0 sees 4 others.
    EXPECT_DOUBLE_EQ(chip.interferenceFactor(0), 1.10);
}

TEST(Interference, DisabledByDefault)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 4);
    for (int i = 0; i < 4; ++i) {
        const auto id = chip.acquireCore(0);
        chip.core(*id).setBusy(true);
    }
    EXPECT_DOUBLE_EQ(chip.interferenceFactor(0), 1.0);
}

TEST(Interference, BelowAllowanceIsFree)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 4);
    chip.setInterference({0.1, 2});
    const auto a = chip.acquireCore(0);
    chip.core(*a).setBusy(true);
    EXPECT_DOUBLE_EQ(chip.interferenceFactor(3), 1.0);
}

TEST(Interference, InflatesServiceTime)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 4);
    chip.setInterference({0.10, 0});

    // Two neighbour cores busy for a long time.
    for (int i = 0; i < 2; ++i) {
        const auto id = chip.acquireCore(0);
        chip.core(*id).setBusy(true);
    }
    const int core = *chip.acquireCore(0);
    double served = 0;
    ServiceInstance inst(1, "S_1", 0, &sim, &chip, core,
                         [&](QueryPtr q) {
                             served = q->hops().back().serving().toSec();
                         });
    inst.enqueue(std::make_shared<Query>(
        1, sim.now(), std::vector<WorkDemand>{{0.0, 1.0}}));
    sim.run();
    // 2 busy neighbours * 0.10 -> 1.2 s instead of 1.0 s.
    EXPECT_NEAR(served, 1.2, 1e-6);
}

TEST(Interference, EndToEndDegradationIsMonotonic)
{
    auto run = [](double alpha) {
        Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                           LoadLevel::Medium,
                                           PolicyKind::PowerChief, 5);
        sc.duration = SimTime::sec(200);
        sc.interference.alphaPerCore = alpha;
        sc.interference.freeCores = 1;
        return ExperimentRunner().run(sc).avgLatencySec;
    };
    const double clean = run(0.0);
    const double contended = run(0.08);
    EXPECT_GT(contended, clean);
}

} // namespace
} // namespace pc
