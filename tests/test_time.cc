/** @file Unit tests for SimTime. */

#include <gtest/gtest.h>

#include "common/time.h"

namespace pc {
namespace {

TEST(SimTime, DefaultIsZero)
{
    EXPECT_EQ(SimTime().toUsec(), 0);
    EXPECT_EQ(SimTime(), SimTime::zero());
}

TEST(SimTime, ConstructionUnits)
{
    EXPECT_EQ(SimTime::usec(1500).toUsec(), 1500);
    EXPECT_EQ(SimTime::msec(1.5).toUsec(), 1500);
    EXPECT_EQ(SimTime::sec(1.5).toUsec(), 1500000);
}

TEST(SimTime, Conversions)
{
    const SimTime t = SimTime::usec(2500000);
    EXPECT_DOUBLE_EQ(t.toSec(), 2.5);
    EXPECT_DOUBLE_EQ(t.toMsec(), 2500.0);
}

TEST(SimTime, Ordering)
{
    EXPECT_LT(SimTime::msec(1), SimTime::msec(2));
    EXPECT_GT(SimTime::sec(1), SimTime::msec(999));
    EXPECT_LE(SimTime::sec(1), SimTime::msec(1000));
    EXPECT_EQ(SimTime::sec(1), SimTime::msec(1000));
}

TEST(SimTime, Arithmetic)
{
    const SimTime a = SimTime::sec(2);
    const SimTime b = SimTime::msec(500);
    EXPECT_EQ((a + b).toUsec(), 2500000);
    EXPECT_EQ((a - b).toUsec(), 1500000);
    EXPECT_EQ((a * 0.25).toUsec(), 500000);
    EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(SimTime, CompoundAssignment)
{
    SimTime t = SimTime::sec(1);
    t += SimTime::msec(250);
    EXPECT_EQ(t, SimTime::msec(1250));
    t -= SimTime::msec(1250);
    EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, NegativeDurations)
{
    const SimTime d = SimTime::sec(1) - SimTime::sec(3);
    EXPECT_EQ(d.toSec(), -2.0);
    EXPECT_LT(d, SimTime::zero());
}

TEST(SimTime, MaxIsLaterThanEverything)
{
    EXPECT_GT(SimTime::max(), SimTime::sec(1e12));
}

TEST(SimTime, ToStringPicksUnit)
{
    EXPECT_EQ(SimTime::usec(12).toString(), "12us");
    EXPECT_EQ(SimTime::msec(12.5).toString(), "12.5ms");
    EXPECT_EQ(SimTime::sec(3.25).toString(), "3.25s");
}

TEST(SimTime, SubMicrosecondTruncation)
{
    // Construction truncates toward zero at microsecond resolution.
    EXPECT_EQ(SimTime::sec(1e-7).toUsec(), 0);
    EXPECT_EQ(SimTime::msec(0.0015).toUsec(), 1);
}

} // namespace
} // namespace pc
