/** @file Unit tests for ServiceInstance: queueing, timing, DVFS rescale. */

#include <vector>

#include <gtest/gtest.h>

#include "app/service_instance.h"
#include "hal/cpufreq.h"

namespace pc {
namespace {

QueryPtr
makeQuery(std::int64_t id, double cpuRef, double mem)
{
    return std::make_shared<Query>(
        id, SimTime::zero(), std::vector<WorkDemand>{{cpuRef, mem}});
}

class InstanceTest : public testing::Test
{
  protected:
    InstanceTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 2)
    {
        coreId = *chip.acquireCore(0); // 1.2 GHz = the reference freq
        inst = std::make_unique<ServiceInstance>(
            1, "SVC_1", 0, &sim, &chip, coreId,
            [this](QueryPtr q) { done.push_back(std::move(q)); });
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    int coreId = -1;
    std::unique_ptr<ServiceInstance> inst;
    std::vector<QueryPtr> done;
};

TEST_F(InstanceTest, StartsIdleAndEmpty)
{
    EXPECT_TRUE(inst->idleAndEmpty());
    EXPECT_EQ(inst->queueLength(), 0u);
    EXPECT_FALSE(inst->busy());
    EXPECT_EQ(inst->frequency(), MHz(1200));
}

TEST_F(InstanceTest, ServesSingleQueryWithExactTiming)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3)); // 1.5 s at 1.2 GHz
    EXPECT_TRUE(inst->busy());
    EXPECT_EQ(inst->queueLength(), 1u);
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    const auto &hop = done[0]->hops().back();
    EXPECT_EQ(hop.instanceId, 1);
    EXPECT_EQ(hop.queuing(), SimTime::zero());
    EXPECT_NEAR(hop.serving().toSec(), 1.5, 1e-6);
    EXPECT_TRUE(inst->idleAndEmpty());
}

TEST_F(InstanceTest, FifoOrderAndQueuingTime)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3)); // 1.5 s each
    inst->enqueue(makeQuery(2, 1.2, 0.3));
    inst->enqueue(makeQuery(3, 1.2, 0.3));
    EXPECT_EQ(inst->queueLength(), 3u);
    EXPECT_EQ(inst->waitingCount(), 2u);
    sim.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0]->id(), 1);
    EXPECT_EQ(done[1]->id(), 2);
    EXPECT_EQ(done[2]->id(), 3);
    EXPECT_NEAR(done[1]->hops().back().queuing().toSec(), 1.5, 1e-6);
    EXPECT_NEAR(done[2]->hops().back().queuing().toSec(), 3.0, 1e-6);
    EXPECT_EQ(sim.now(), SimTime::sec(4.5));
}

TEST_F(InstanceTest, FasterCoreServesFaster)
{
    chip.core(coreId).setLevel(12); // 2.4 GHz
    inst->enqueue(makeQuery(1, 1.2, 0.3));
    sim.run();
    // 0.3 + 1.2 * 1200/2400 = 0.9 s.
    EXPECT_NEAR(done[0]->hops().back().serving().toSec(), 0.9, 2e-6);
}

TEST_F(InstanceTest, MidServiceFrequencyBoostRescales)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3)); // 1.5 s at 1.2 GHz
    // At half progress, jump to 2.4 GHz: the remaining half of the work
    // takes 0.45 s, so the query finishes at t = 1.20 s.
    sim.scheduleAt(SimTime::sec(0.75),
                   [&]() { chip.core(coreId).setLevel(12); });
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_NEAR(done[0]->hops().back().serving().toSec(), 1.20, 2e-6);
}

TEST_F(InstanceTest, MidServiceFrequencyDropRescales)
{
    chip.core(coreId).setLevel(12); // start at 2.4 GHz: total 0.9 s
    inst->enqueue(makeQuery(1, 1.2, 0.3));
    // At t=0.45 (progress 0.5), drop to 1.2 GHz: remaining takes 0.75 s.
    sim.scheduleAt(SimTime::sec(0.45),
                   [&]() { chip.core(coreId).setLevel(0); });
    sim.run();
    EXPECT_NEAR(done[0]->hops().back().serving().toSec(), 1.20, 2e-6);
}

TEST_F(InstanceTest, MultipleFrequencyChangesCompose)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3)); // 1.5 s at 1.2 GHz
    // 0.5 s at 1.2 GHz -> progress 1/3; rest at 2.4 GHz (0.9 s total)
    // takes 0.6 s; but halfway through that, back to 1.2 GHz.
    sim.scheduleAt(SimTime::sec(0.5),
                   [&]() { chip.core(coreId).setLevel(12); });
    sim.scheduleAt(SimTime::sec(0.8),
                   [&]() { chip.core(coreId).setLevel(0); });
    sim.run();
    // progress after 0.5s @1.2: 1/3. after 0.3s @2.4: +0.3/0.9 = 1/3.
    // remaining 1/3 at 1.2 GHz: 0.5 s -> finish at 1.3 s.
    EXPECT_NEAR(done[0]->hops().back().serving().toSec(), 1.30, 2e-6);
}

TEST_F(InstanceTest, FreqChangeWhileIdleIsHarmless)
{
    chip.core(coreId).setLevel(5);
    chip.core(coreId).setLevel(2);
    inst->enqueue(makeQuery(1, 0.0, 0.5));
    sim.run();
    EXPECT_EQ(done.size(), 1u);
}

TEST_F(InstanceTest, StealHalfTakesTailPreservingOrder)
{
    for (int i = 1; i <= 5; ++i)
        inst->enqueue(makeQuery(i, 1.2, 0.3));
    // Queue: 1 in service, 2..5 waiting. Steal -> takes 4, 5.
    auto stolen = inst->stealHalfQueue();
    ASSERT_EQ(stolen.size(), 2u);
    EXPECT_EQ(stolen[0].query->id(), 4);
    EXPECT_EQ(stolen[1].query->id(), 5);
    EXPECT_EQ(inst->waitingCount(), 2u);
}

TEST_F(InstanceTest, StealFromShortQueueTakesNothing)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3));
    inst->enqueue(makeQuery(2, 1.2, 0.3));
    // 1 waiting -> half of 1 == 0.
    EXPECT_TRUE(inst->stealHalfQueue().empty());
}

TEST_F(InstanceTest, AdoptPreservesEnqueueTimestamp)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3));
    inst->enqueue(makeQuery(2, 1.2, 0.3));
    inst->enqueue(makeQuery(3, 1.2, 0.3));
    auto stolen = inst->stealHalfQueue(); // query 3, enqueued at t=0
    ASSERT_EQ(stolen.size(), 1u);

    // A second instance serves the stolen query later; its queuing time
    // must span from the original enqueue.
    const int core2 = *chip.acquireCore(12);
    std::vector<QueryPtr> done2;
    ServiceInstance other(2, "SVC_2", 0, &sim, &chip, core2,
                          [&](QueryPtr q) { done2.push_back(q); });
    sim.runUntil(SimTime::sec(2));
    other.adopt(std::move(stolen[0]));
    sim.run();
    ASSERT_EQ(done2.size(), 1u);
    EXPECT_NEAR(done2[0]->hops().back().queuing().toSec(), 2.0, 1e-6);
}

TEST_F(InstanceTest, DrainWaitingEmptiesQueueKeepsInFlight)
{
    for (int i = 1; i <= 4; ++i)
        inst->enqueue(makeQuery(i, 1.2, 0.3));
    auto drained = inst->drainWaiting();
    EXPECT_EQ(drained.size(), 3u);
    EXPECT_TRUE(inst->busy());
    EXPECT_EQ(inst->queueLength(), 1u);
    sim.run();
    EXPECT_EQ(done.size(), 1u); // only the in-flight one finishes here
}

TEST_F(InstanceTest, DrainingFlagIsSticky)
{
    EXPECT_FALSE(inst->draining());
    inst->setDraining(true);
    EXPECT_TRUE(inst->draining());
}

TEST_F(InstanceTest, BusyTimeAccountsPartialService)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3)); // 1.5 s
    sim.runUntil(SimTime::sec(1));
    EXPECT_NEAR(inst->totalBusyTime().toSec(), 1.0, 1e-6);
    sim.run();
    EXPECT_NEAR(inst->totalBusyTime().toSec(), 1.5, 1e-6);
}

TEST_F(InstanceTest, QueriesServedCounts)
{
    inst->enqueue(makeQuery(1, 0.1, 0.0));
    inst->enqueue(makeQuery(2, 0.1, 0.0));
    sim.run();
    EXPECT_EQ(inst->queriesServed(), 2u);
}

TEST_F(InstanceTest, CoreBusyStateFollowsService)
{
    inst->enqueue(makeQuery(1, 1.2, 0.3));
    EXPECT_EQ(chip.core(coreId).state(), Core::State::Busy);
    sim.run();
    EXPECT_EQ(chip.core(coreId).state(), Core::State::Idle);
}

TEST_F(InstanceTest, ZeroWorkQueryCompletesImmediately)
{
    inst->enqueue(makeQuery(1, 0.0, 0.0));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->hops().back().serving(), SimTime::zero());
}

TEST(InstanceDeath, NullQueryPanics)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const int core = *chip.acquireCore(0);
    ServiceInstance inst(1, "X_1", 0, &sim, &chip, core, [](QueryPtr) {});
    EXPECT_DEATH(inst.enqueue(nullptr), "null query");
}

} // namespace
} // namespace pc
