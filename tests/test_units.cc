/** @file Unit tests for the MHz / Watts / Joules strong types. */

#include <gtest/gtest.h>

#include "common/units.h"

namespace pc {
namespace {

TEST(MHz, ValueAndGHz)
{
    const MHz f(1800);
    EXPECT_EQ(f.value(), 1800);
    EXPECT_DOUBLE_EQ(f.toGHz(), 1.8);
}

TEST(MHz, Ordering)
{
    EXPECT_LT(MHz(1200), MHz(2400));
    EXPECT_EQ(MHz(1800), MHz(1800));
    EXPECT_GE(MHz(2400), MHz(2400));
}

TEST(MHz, Arithmetic)
{
    EXPECT_EQ((MHz(1800) + MHz(100)).value(), 1900);
    EXPECT_EQ((MHz(1800) - MHz(600)).value(), 1200);
}

TEST(MHz, ToString)
{
    EXPECT_EQ(MHz(1800).toString(), "1.8GHz");
    EXPECT_EQ(MHz(2400).toString(), "2.4GHz");
}

TEST(Watts, Arithmetic)
{
    Watts w(4.0);
    w += Watts(1.5);
    EXPECT_DOUBLE_EQ(w.value(), 5.5);
    w -= Watts(0.5);
    EXPECT_DOUBLE_EQ(w.value(), 5.0);
    EXPECT_DOUBLE_EQ((w * 2.0).value(), 10.0);
    EXPECT_DOUBLE_EQ((w + Watts(1.0)).value(), 6.0);
    EXPECT_DOUBLE_EQ((w - Watts(1.0)).value(), 4.0);
}

TEST(Watts, Ordering)
{
    EXPECT_LT(Watts(1.0), Watts(2.0));
    EXPECT_GT(Watts(-1.0), Watts(-2.0));
}

TEST(Watts, ToString)
{
    EXPECT_EQ(Watts(4.52).toString(), "4.52W");
}

TEST(Joules, Accumulation)
{
    Joules e;
    e += Joules(10.0);
    e += Joules(2.5);
    EXPECT_DOUBLE_EQ(e.value(), 12.5);
    EXPECT_DOUBLE_EQ((e - Joules(2.5)).value(), 10.0);
    EXPECT_DOUBLE_EQ((e + Joules(2.5)).value(), 15.0);
}

TEST(Joules, Ordering)
{
    EXPECT_LT(Joules(1.0), Joules(1.5));
}

} // namespace
} // namespace pc
