/**
 * @file
 * The cluster budget tree, tested at every layer: the pluggable split
 * policies (unit), the arbiter's conservation protocol under lost /
 * duplicated / reordered traffic (unit, direct reports), and the full
 * fleet path end to end — bit-identical results at any worker count,
 * the cap never exceeded at any rebalance decision point, and the
 * partition-minority freeze. Mirrors tests/test_policy_invariants.cc
 * one level up the tree.
 */

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/arbiter.h"
#include "cluster/cluster_policy.h"
#include "exp/config_loader.h"
#include "exp/result_cache.h"
#include "exp/sweep.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace pc {
namespace {

// --------------------------------------------------- policy plumbing

TEST(ClusterPolicyKind_, NamesRoundTripAndAliasesParse)
{
    for (const ClusterPolicyKind kind : allClusterPolicyKinds()) {
        ClusterPolicyKind parsed = ClusterPolicyKind::Count;
        EXPECT_TRUE(parseClusterPolicyKind(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    ClusterPolicyKind parsed = ClusterPolicyKind::Count;
    EXPECT_TRUE(parseClusterPolicyKind("proportional-demand", &parsed));
    EXPECT_EQ(parsed, ClusterPolicyKind::ProportionalDemand);
    EXPECT_TRUE(parseClusterPolicyKind("fastcap", &parsed));
    EXPECT_EQ(parsed, ClusterPolicyKind::Waterfill);
    EXPECT_TRUE(parseClusterPolicyKind("water-filling", &parsed));
    EXPECT_EQ(parsed, ClusterPolicyKind::Waterfill);
    EXPECT_FALSE(parseClusterPolicyKind("bogus", &parsed));
    EXPECT_EQ(makeClusterPolicy(ClusterPolicyKind::None), nullptr);
}

ClusterNodeView
view(int node, double assumed, double floor, double demand,
     double wanted, bool frozen = false)
{
    ClusterNodeView v;
    v.node = node;
    v.assumedCapWatts = assumed;
    v.allocatedWatts = assumed;
    v.floorWatts = floor;
    v.demand = demand;
    v.wantedWatts = wanted;
    v.frozen = frozen;
    return v;
}

double
sum(const std::vector<double> &xs)
{
    double s = 0.0;
    for (const double x : xs)
        s += x;
    return s;
}

TEST(ClusterPolicies, EqualSplitDividesUnfrozenPoolEvenly)
{
    const auto policy = makeClusterPolicy(ClusterPolicyKind::EqualSplit);
    std::vector<ClusterNodeView> nodes = {
        view(0, 25.0, 6.25, 0.0, 25.0),
        view(1, 25.0, 6.25, 9.0, 60.0),
        view(2, 30.0, 6.25, 2.0, 40.0, /*frozen=*/true),
    };
    std::vector<double> targets;
    policy->split(100.0, nodes, &targets);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_NEAR(targets[2], 30.0, 1e-9); // frozen: pinned at assumed
    EXPECT_NEAR(targets[0], 35.0, 1e-9); // (100 - 30) / 2
    EXPECT_NEAR(targets[1], 35.0, 1e-9);
    EXPECT_LE(sum(targets), 100.0 + 1e-9);
}

TEST(ClusterPolicies, ProportionalFollowsDemandAboveFloors)
{
    const auto policy =
        makeClusterPolicy(ClusterPolicyKind::ProportionalDemand);
    std::vector<ClusterNodeView> nodes = {
        view(0, 50.0, 10.0, 3.0, 80.0),
        view(1, 50.0, 10.0, 1.0, 60.0),
    };
    std::vector<double> targets;
    policy->split(100.0, nodes, &targets);
    ASSERT_EQ(targets.size(), 2u);
    // Floors 10 + 10, surplus 80 split 3:1.
    EXPECT_NEAR(targets[0], 70.0, 1e-9);
    EXPECT_NEAR(targets[1], 30.0, 1e-9);
    EXPECT_LE(sum(targets), 100.0 + 1e-9);
}

TEST(ClusterPolicies, ProportionalFallsBackToEqualOnZeroDemand)
{
    const auto policy =
        makeClusterPolicy(ClusterPolicyKind::ProportionalDemand);
    std::vector<ClusterNodeView> nodes = {
        view(0, 50.0, 10.0, 0.0, 10.0),
        view(1, 50.0, 10.0, 0.0, 10.0),
    };
    std::vector<double> targets;
    policy->split(100.0, nodes, &targets);
    EXPECT_NEAR(targets[0], 50.0, 1e-9);
    EXPECT_NEAR(targets[1], 50.0, 1e-9);
}

TEST(ClusterPolicies, WaterfillStopsAtWantedAndSpreadsSurplus)
{
    const auto policy = makeClusterPolicy(ClusterPolicyKind::Waterfill);
    std::vector<ClusterNodeView> nodes = {
        view(0, 50.0, 10.0, 1.0, 20.0),  // satisfied at 20 W
        view(1, 50.0, 10.0, 16.0, 90.0), // wants far more
    };
    std::vector<double> targets;
    policy->split(100.0, nodes, &targets);
    ASSERT_EQ(targets.size(), 2u);
    // Node 0 fills to its wanted 20 W; node 1 takes the rest up to its
    // wanted level; the pool is exhausted before any equal surplus.
    EXPECT_NEAR(targets[0], 20.0, 1e-9);
    EXPECT_NEAR(targets[1], 80.0, 1e-9);
    EXPECT_LE(sum(targets), 100.0 + 1e-9);
}

TEST(ClusterPolicies, WaterfillSpreadsBeyondEveryWantedLevel)
{
    const auto policy = makeClusterPolicy(ClusterPolicyKind::Waterfill);
    std::vector<ClusterNodeView> nodes = {
        view(0, 50.0, 10.0, 0.0, 20.0),
        view(1, 50.0, 10.0, 0.0, 30.0),
    };
    std::vector<double> targets;
    policy->split(100.0, nodes, &targets);
    // Both satisfied (20 + 30 = 50); the remaining 50 splits equally.
    EXPECT_NEAR(targets[0], 45.0, 1e-9);
    EXPECT_NEAR(targets[1], 55.0, 1e-9);
}

// ------------------------------------------------ arbiter unit tests

ClusterNodeReport
report(int node, std::uint64_t seq, double effective, double demand)
{
    ClusterNodeReport r;
    r.node = node;
    r.seq = seq;
    r.allocatedWatts = effective;
    r.effectiveCapWatts = effective;
    r.targetCapWatts = effective;
    r.queueBacklog = demand;
    r.p99Sec = 0.0;
    return r;
}

ClusterArbiterConfig
arbiterConfig(double cap)
{
    ClusterArbiterConfig cfg;
    cfg.capWatts = cap;
    cfg.rebalanceInterval = SimTime::sec(1);
    return cfg;
}

TEST(ClusterArbiter_, StartsAtEqualSharesAndConservesThem)
{
    Simulator sim;
    ClusterArbiter arb(&sim, 4, arbiterConfig(100.0),
                       makeClusterPolicy(ClusterPolicyKind::EqualSplit),
                       nullptr, nullptr);
    for (int n = 0; n < 4; ++n) {
        EXPECT_NEAR(arb.assumedCapWatts(n), 25.0, 1e-9);
        EXPECT_NEAR(arb.lastGrantWatts(n), 25.0, 1e-9);
        EXPECT_FALSE(arb.isFrozen(n));
    }
    EXPECT_NEAR(arb.assumedTotalWatts(), 100.0, 1e-9);
}

TEST(ClusterArbiter_, DuplicateAndReorderedReportsAreDropped)
{
    Simulator sim;
    ClusterArbiter arb(&sim, 2, arbiterConfig(100.0),
                       makeClusterPolicy(ClusterPolicyKind::EqualSplit),
                       nullptr, nullptr);
    arb.onReport(report(0, 5, 50.0, 0.0));
    arb.onReport(report(0, 5, 50.0, 0.0)); // duplicate
    arb.onReport(report(0, 3, 50.0, 0.0)); // reordered-stale
    arb.onReport(report(0, 6, 50.0, 0.0)); // fresh
    EXPECT_EQ(arb.reportsSeen(), 4u);
    EXPECT_EQ(arb.reportsDropped(), 2u);
}

TEST(ClusterArbiter_, OverbudgetReportIsAConservationFatal)
{
    // A node claiming an effective cap above its assumed share means
    // the protocol broke somewhere; the arbiter must die loudly.
    EXPECT_EXIT(
        {
            Simulator sim;
            ClusterArbiter arb(
                &sim, 2, arbiterConfig(100.0),
                makeClusterPolicy(ClusterPolicyKind::EqualSplit),
                nullptr, nullptr);
            arb.onReport(report(0, 1, 80.0, 0.0)); // assumed is 50
        },
        ::testing::ExitedWithCode(1), "conservation");
}

/**
 * The heart of the protocol: a *lost decrease* must never free watts.
 * Node 0 is granted a decrease but keeps reporting its old effective
 * cap (the grant vanished); the hot node 1 must not be raised until
 * node 0 confirms it actually came down.
 */
TEST(ClusterArbiter_, LostDecreaseKeepsWattsPinnedUntilConfirmed)
{
    Simulator sim;
    ClusterArbiter arb(
        &sim, 2, arbiterConfig(100.0),
        makeClusterPolicy(ClusterPolicyKind::ProportionalDemand),
        nullptr, nullptr);
    std::vector<ClusterGrant> grants;
    arb.setGrantSink(
        [&grants](const ClusterGrant &g) { grants.push_back(g); });
    arb.start();

    // Fresh reports just before every rebalance: node 0 idle and stuck
    // at 50 W effective (it never applies its decrease), node 1 hot.
    std::uint64_t seq = 0;
    for (int k = 0; k < 4; ++k) {
        sim.scheduleAt(SimTime::msec(900 + 1000 * k), [&arb, &seq]() {
            arb.onReport(report(0, ++seq, 50.0, /*demand=*/0.0));
            arb.onReport(report(1, ++seq, 50.0, /*demand=*/60.0));
        });
    }
    sim.runUntil(SimTime::msec(4500));

    // The decrease was proposed (floor = 0.25 * 50 = 12.5 W) but node
    // 0 never confirmed: its watts stay pinned, node 1 stays at 50.
    EXPECT_NEAR(arb.assumedCapWatts(0), 50.0, 1e-9);
    EXPECT_NEAR(arb.assumedCapWatts(1), 50.0, 1e-9);
    for (const ClusterGrant &g : grants) {
        if (g.node == 0)
            EXPECT_NEAR(g.targetCapWatts, 12.5, 1e-9);
        else
            ADD_FAILURE() << "node 1 must not be granted an increase "
                             "while node 0's decrease is unconfirmed "
                             "(got " << g.targetCapWatts << " W)";
    }
    ASSERT_FALSE(grants.empty());

    // Confirmation: node 0 reports the applied decrease; the freed
    // watts may now fund node 1 — and only now.
    grants.clear();
    sim.scheduleAt(SimTime::msec(4900), [&arb, &seq]() {
        arb.onReport(report(0, ++seq, 12.5, 0.0));
        arb.onReport(report(1, ++seq, 50.0, 60.0));
    });
    sim.runUntil(SimTime::msec(5500));
    EXPECT_NEAR(arb.assumedCapWatts(0), 12.5, 1e-9);
    EXPECT_NEAR(arb.assumedCapWatts(1), 87.5, 1e-9);
    bool raised = false;
    for (const ClusterGrant &g : grants)
        if (g.node == 1 && g.targetCapWatts > 50.0)
            raised = true;
    EXPECT_TRUE(raised);
    EXPECT_LE(arb.assumedTotalWatts(), 100.0 + 1e-9);
}

TEST(ClusterArbiter_, PartitionedMinorityFreezesAtItsShare)
{
    Simulator sim;
    ClusterArbiter arb(
        &sim, 3, arbiterConfig(90.0),
        makeClusterPolicy(ClusterPolicyKind::ProportionalDemand),
        nullptr, nullptr);
    std::vector<ClusterGrant> grants;
    arb.setGrantSink(
        [&grants](const ClusterGrant &g) { grants.push_back(g); });
    std::vector<ClusterDecision> decisions;
    arb.setDecisionProbe([&decisions](const ClusterDecision &d) {
        decisions.push_back(d);
    });
    arb.start();

    // Node 2 reports once, then the partition: silence forever. Nodes
    // 0 and 1 stay healthy and hungry.
    std::uint64_t seq = 0;
    sim.scheduleAt(SimTime::msec(900), [&arb, &seq]() {
        arb.onReport(report(2, ++seq, 30.0, 5.0));
    });
    for (int k = 0; k < 10; ++k) {
        sim.scheduleAt(SimTime::msec(900 + 1000 * k), [&arb, &seq]() {
            arb.onReport(report(0, ++seq, 30.0, 40.0));
            arb.onReport(report(1, ++seq, 30.0, 40.0));
        });
    }
    sim.runUntil(SimTime::sec(10));

    // freezeAfter defaults to 3x the interval: by t=10 s node 2 is
    // frozen at its last share, which was never exceeded.
    EXPECT_TRUE(arb.isFrozen(2));
    EXPECT_GE(arb.freezeEvents(), 1u);
    EXPECT_NEAR(arb.assumedCapWatts(2), 30.0, 1e-9);
    // Decrease proposals to node 2 before the freeze are fine (its
    // assumed share stays pinned until confirmed); what must never
    // happen is an *increase* granted to a silent node.
    for (const ClusterGrant &g : grants) {
        if (g.node == 2) {
            EXPECT_LE(g.targetCapWatts, 30.0 + 1e-9);
        }
    }
    // Every decision, before and after the freeze, conserves the cap,
    // and the frozen rounds pin node 2's target at its assumed share.
    ASSERT_FALSE(decisions.empty());
    for (const ClusterDecision &d : decisions) {
        EXPECT_LE(d.assumedTotalWatts, d.capWatts + 1e-9);
        for (const ClusterNodeDecision &nd : d.nodes) {
            if (nd.frozen) {
                EXPECT_NEAR(nd.targetWatts, nd.assumedBeforeWatts,
                            1e-9);
            }
        }
    }
    // The healthy majority never absorbs the frozen node's watts.
    EXPECT_LE(arb.assumedCapWatts(0) + arb.assumedCapWatts(1),
              90.0 - 30.0 + 1e-9);
}

// ----------------------------------------------- fleet end to end

/** Small but real fleet: 4 skewed groups under a 75 % cluster cap. */
Scenario
fleetScenario(ClusterPolicyKind policy, bool withFaults)
{
    Scenario sc = Scenario::fleet(policy, /*nodeGroups=*/4,
                                  /*capFraction=*/0.75,
                                  /*durationSec=*/10.0, /*seed=*/321);
    // A quarter of the factory's arrival rate keeps the test fast; the
    // per-group skew (groupLoadScale) is preserved on top of it.
    sc.load = sc.load.scaled(0.25);
    if (withFaults) {
        sc.faults.active = true;
        sc.faults.seed = 99;
        BusFaultRule lossy;
        lossy.endpoint = "*";
        lossy.dropRate = 0.05;
        lossy.duplicateRate = 0.02;
        lossy.reorderRate = 0.1;
        sc.faults.bus.push_back(lossy);
        sc.name += "/lossy";
    }
    return sc;
}

class ClusterDeterminism : public ::testing::TestWithParam<bool>
{
};

TEST_P(ClusterDeterminism, ResultBitIdenticalAtAnyWorkerCount)
{
    for (const ClusterPolicyKind policy :
         {ClusterPolicyKind::ProportionalDemand,
          ClusterPolicyKind::Waterfill}) {
        const Scenario sc = fleetScenario(policy, GetParam());
        std::string reference;
        for (const int workers : {1, 2, 8}) {
            ExperimentRunner runner;
            runner.setShards(workers);
            const RunResult result = runner.run(sc);
            EXPECT_GT(result.completed, 0u);
            const std::string json = runResultToJson(result).dump();
            if (reference.empty())
                reference = json;
            else
                EXPECT_EQ(json, reference)
                    << toString(policy) << " diverged at " << workers
                    << " workers";
        }
    }
}

TEST_P(ClusterDeterminism, SweepPoolJobsDoNotChangeResults)
{
    const Scenario sc =
        fleetScenario(ClusterPolicyKind::Waterfill, GetParam());
    std::string reference;
    for (const int jobs : {1, 3}) {
        for (const int shards : {1, 2}) {
            SweepOptions options;
            options.jobs = jobs;
            options.shards = shards;
            options.useCache = false;
            SweepRunner sweep(options);
            const RunResult result = sweep.runOne(sc);
            const std::string json = runResultToJson(result).dump();
            if (reference.empty())
                reference = json;
            else
                EXPECT_EQ(json, reference) << "diverged at jobs="
                                           << jobs << " shards="
                                           << shards;
        }
    }
}

TEST_P(ClusterDeterminism, CapNeverExceededAtAnyDecisionPoint)
{
    const Scenario sc =
        fleetScenario(ClusterPolicyKind::ProportionalDemand,
                      GetParam());
    std::size_t decisions = 0;
    ExperimentRunner runner;
    runner.setShards(2);
    runner.setClusterProbe([&decisions](const ClusterDecision &d) {
        ++decisions;
        EXPECT_LE(d.assumedTotalWatts, d.capWatts + 1e-6);
        double total = 0.0;
        for (const ClusterNodeDecision &nd : d.nodes) {
            EXPECT_GE(nd.targetWatts, 0.0);
            EXPECT_GE(nd.assumedAfterWatts, 0.0);
            total += nd.assumedAfterWatts;
            if (nd.frozen) {
                EXPECT_NEAR(nd.targetWatts, nd.assumedBeforeWatts,
                            1e-9);
            }
        }
        EXPECT_NEAR(total, d.assumedTotalWatts, 1e-6);
    });
    const RunResult result = runner.run(sc);
    EXPECT_GT(result.completed, 0u);
    EXPECT_GT(decisions, 0u);
}

TEST_P(ClusterDeterminism, EnvelopeCarriesClusterSummaryAndAudit)
{
    const Scenario sc =
        fleetScenario(ClusterPolicyKind::Waterfill, GetParam());
    const std::string dir = ::testing::TempDir();
    const std::string tag = GetParam() ? "lossy" : "clean";
    TelemetryConfig telemetry;
    telemetry.timeseriesOut = dir + "/cluster_" + tag + ".ts.json";
    ExperimentRunner runner(/*recordTraces=*/false, SimTime::sec(5),
                            /*attribution=*/false,
                            /*collectAudit=*/true);
    runner.setShards(2);
    const RunResult result = runner.run(sc, &telemetry);
    EXPECT_TRUE(result.audit.collected);
    EXPECT_GT(result.audit.clusterRebalances, 0u);
    std::ifstream in(telemetry.timeseriesOut, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string ts = buf.str();
    EXPECT_NE(ts.find("\"cluster\":"), std::string::npos);
    EXPECT_NE(ts.find("\"policy\":\"waterfill\""), std::string::npos);
    EXPECT_NE(ts.find("\"cap_watts\":"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(CleanAndLossy, ClusterDeterminism,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "lossy" : "clean";
                         });

// ------------------------------------------------- scenario identity

TEST(ClusterCacheKey, ClusterKnobsArePartOfTheScenarioIdentity)
{
    const Scenario base =
        fleetScenario(ClusterPolicyKind::Waterfill, false);
    const auto canonical = scenarioCanonical(base);
    ASSERT_TRUE(canonical.has_value());
    EXPECT_NE(canonical->find("|cluster:"), std::string::npos);
    EXPECT_NE(canonical->find("scale:"), std::string::npos);

    Scenario policy = base;
    policy.clusterPolicy = ClusterPolicyKind::ProportionalDemand;
    EXPECT_NE(*scenarioCanonical(policy), *canonical);

    Scenario interval = base;
    interval.rebalanceInterval = SimTime::sec(7);
    EXPECT_NE(*scenarioCanonical(interval), *canonical);

    Scenario budget = base;
    budget.clusterBudget = Watts(123.0);
    EXPECT_NE(*scenarioCanonical(budget), *canonical);

    Scenario skew = base;
    skew.groupLoadScale[0] = 2.0;
    EXPECT_NE(*scenarioCanonical(skew), *canonical);

    // Historical-key stability: a non-cluster scenario's canonical
    // form must not grow a cluster block.
    Scenario off = base;
    off.clusterPolicy = ClusterPolicyKind::None;
    off.groupLoadScale.clear();
    EXPECT_EQ(scenarioCanonical(off)->find("|cluster:"),
              std::string::npos);
}

// -------------------------------------------- topology validation

TEST(TopologyValidation, RunnerRejectsBadTopologyWithOffenderNamed)
{
    Scenario bad = fleetScenario(ClusterPolicyKind::Waterfill, false);
    bad.remoteFraction = 1.5;
    EXPECT_EXIT(
        { ExperimentRunner().run(bad); },
        ::testing::ExitedWithCode(1), "remote-fraction");

    Scenario negGroups =
        fleetScenario(ClusterPolicyKind::Waterfill, false);
    negGroups.nodeGroups = -2;
    EXPECT_EXIT(
        { ExperimentRunner().run(negGroups); },
        ::testing::ExitedWithCode(1), "node-groups");

    Scenario zeroLat =
        fleetScenario(ClusterPolicyKind::Waterfill, false);
    zeroLat.interNodeLatency = SimTime::zero();
    EXPECT_EXIT(
        { ExperimentRunner().run(zeroLat); },
        ::testing::ExitedWithCode(1), "inter-node-latency");

    Scenario badScale =
        fleetScenario(ClusterPolicyKind::Waterfill, false);
    badScale.groupLoadScale = {1.0, -0.5, 1.0, 1.0};
    EXPECT_EXIT(
        { ExperimentRunner().run(badScale); },
        ::testing::ExitedWithCode(1), "group-load-scale");

    Scenario loneCluster =
        fleetScenario(ClusterPolicyKind::Waterfill, false);
    loneCluster.nodeGroups = 1;
    loneCluster.groupLoadScale = {1.0};
    EXPECT_EXIT(
        { ExperimentRunner().run(loneCluster); },
        ::testing::ExitedWithCode(1), "cluster");
}

TEST(TopologyValidation, ConfigLoaderNamesTheOffendingField)
{
    const auto load = [](const std::string &scenarioBody) {
        const std::string text =
            "{\"workload\": \"sirius\", \"scenario\": {" +
            scenarioBody + "}}";
        return scenarioFromJsonText(text);
    };

    EXPECT_FALSE(load("\"node_groups\": -1").ok());
    EXPECT_NE(load("\"node_groups\": -1")
                  .error.find("node-groups"),
              std::string::npos);

    const auto badFraction =
        load("\"node_groups\": 2, \"remote_fraction\": 1.5");
    EXPECT_FALSE(badFraction.ok());
    EXPECT_NE(badFraction.error.find("remote-fraction"),
              std::string::npos);

    const auto badLatency =
        load("\"node_groups\": 2, \"inter_node_latency_ms\": 0");
    EXPECT_FALSE(badLatency.ok());
    EXPECT_NE(badLatency.error.find("inter-node-latency"),
              std::string::npos);

    const auto badPolicy =
        load("\"node_groups\": 2, \"cluster_policy\": \"bogus\"");
    EXPECT_FALSE(badPolicy.ok());
    EXPECT_NE(badPolicy.error.find("cluster_policy"),
              std::string::npos);

    const auto badScale = load(
        "\"node_groups\": 2, \"group_load_scale\": [1.0, 1.0, 1.0]");
    EXPECT_FALSE(badScale.ok());
    EXPECT_NE(badScale.error.find("group-load-scale"),
              std::string::npos);

    const auto good = load(
        "\"node_groups\": 2, \"cluster_policy\": \"waterfill\", "
        "\"rebalance_interval_sec\": 2, "
        "\"cluster_budget_watts\": 120, "
        "\"group_load_scale\": [1.2, 0.8]");
    ASSERT_TRUE(good.ok()) << good.error;
    EXPECT_EQ(good.scenario->clusterPolicy,
              ClusterPolicyKind::Waterfill);
    EXPECT_EQ(good.scenario->nodeGroups, 2);
    EXPECT_NEAR(good.scenario->clusterBudget.value(), 120.0, 1e-9);
    ASSERT_EQ(good.scenario->groupLoadScale.size(), 2u);
}

} // namespace
} // namespace pc
