/**
 * @file
 * Property-based and model-checking tests: randomized torture of the
 * simulator, queueing-theory validation of the service machinery
 * (M/M/1), randomized DVFS-rescale checking against an analytic
 * reference integrator, moving-window vs naive reference, and budget
 * fuzzing under random operation sequences.
 */

#include <deque>
#include <map>

#include <gtest/gtest.h>

#include "app/service_instance.h"
#include "common/rng.h"
#include "power/budget.h"
#include "stats/window.h"

namespace pc {
namespace {

// ------------------------------------------------- simulator torture

TEST(PropertySimulator, RandomScheduleCancelMatchesReference)
{
    // Random mix of schedules and cancels; the set of executed events
    // must equal the reference (scheduled minus successfully
    // cancelled) and fire in timestamp order.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Simulator sim;
        Rng rng(seed);
        std::map<EventId, SimTime> expected;
        std::vector<std::pair<SimTime, EventId>> fired;

        std::vector<EventId> live;
        for (int i = 0; i < 500; ++i) {
            if (!live.empty() && rng.bernoulli(0.3)) {
                const std::size_t pick = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<long>(live.size()) - 1));
                const EventId id = live[pick];
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(pick));
                ASSERT_TRUE(sim.cancel(id));
                expected.erase(id);
            } else {
                const SimTime at =
                    SimTime::usec(rng.uniformInt(0, 1000000));
                const EventId id = sim.scheduleAt(at, [&fired, &sim]() {
                    fired.push_back({sim.now(), 0});
                });
                live.push_back(id);
                expected[id] = at;
            }
        }
        sim.run();
        ASSERT_EQ(fired.size(), expected.size());
        for (std::size_t i = 1; i < fired.size(); ++i)
            EXPECT_LE(fired[i - 1].first, fired[i].first);
    }
}

TEST(PropertySimulator, CancelAfterFireReturnsFalse)
{
    // Once an event has executed (or was already cancelled), cancel()
    // must refuse — under any random schedule.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Simulator sim;
        Rng rng(seed);
        std::vector<EventId> ids;
        for (int i = 0; i < 200; ++i)
            ids.push_back(sim.scheduleAt(
                SimTime::usec(rng.uniformInt(0, 50000)), []() {}));
        // Cancel a random subset before running.
        std::vector<EventId> cancelled;
        for (const EventId id : ids) {
            if (rng.bernoulli(0.25)) {
                ASSERT_TRUE(sim.cancel(id));
                cancelled.push_back(id);
            }
        }
        sim.run();
        for (const EventId id : ids)
            EXPECT_FALSE(sim.cancel(id));
        for (const EventId id : cancelled)
            EXPECT_FALSE(sim.cancel(id));
    }
}

TEST(PropertySimulator, EqualTimestampsFireInScheduleOrder)
{
    // 1k random schedules/cancels drawn from a tiny timestamp set so
    // ties are the common case: among surviving events with equal
    // timestamps, execution order must equal schedule order.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Simulator sim;
        Rng rng(seed);

        int scheduleSeq = 0;
        std::vector<std::pair<SimTime, int>> fired;
        std::vector<std::pair<EventId, int>> live; // id -> seq
        for (int op = 0; op < 1000; ++op) {
            if (!live.empty() && rng.bernoulli(0.25)) {
                const std::size_t pick = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<long>(live.size()) - 1));
                ASSERT_TRUE(sim.cancel(live[pick].first));
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            } else {
                // Only 8 distinct timestamps: collisions guaranteed.
                const SimTime at =
                    SimTime::msec(10 * rng.uniformInt(1, 8));
                const int seq = scheduleSeq++;
                const EventId id =
                    sim.scheduleAt(at, [&fired, &sim, seq]() {
                        fired.push_back({sim.now(), seq});
                    });
                live.push_back({id, seq});
            }
        }
        sim.run();
        ASSERT_EQ(fired.size(), live.size());
        for (std::size_t i = 1; i < fired.size(); ++i) {
            ASSERT_LE(fired[i - 1].first, fired[i].first);
            if (fired[i - 1].first == fired[i].first) {
                EXPECT_LT(fired[i - 1].second, fired[i].second)
                    << "tie at t=" << fired[i].first.toSec()
                    << " s broke schedule order (seed=" << seed << ")";
            }
        }
    }
}

// ---------------------------------------------------- M/M/1 validation

TEST(PropertyQueueing, MM1MeanSojournMatchesTheory)
{
    // Exponential service (cv=1 lognormal is NOT exponential, so build
    // demands directly from an exponential draw), Poisson arrivals:
    // the mean sojourn time must match 1/(mu - lambda).
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const int core = *chip.acquireCore(0); // 1.2 GHz = reference

    double sumSojourn = 0.0;
    std::uint64_t n = 0;
    std::map<std::int64_t, SimTime> arrivals;
    ServiceInstance inst(1, "S_1", 0, &sim, &chip, core,
                         [&](QueryPtr q) {
                             sumSojourn +=
                                 (sim.now() - arrivals[q->id()]).toSec();
                             ++n;
                         });

    const double mu = 2.0;      // service rate
    const double lambda = 1.2;  // arrival rate (rho = 0.6)
    Rng rng(99);
    SimTime t;
    for (int i = 0; i < 40000; ++i) {
        t += SimTime::sec(rng.exponential(1.0 / lambda));
        const double service = rng.exponential(1.0 / mu);
        sim.scheduleAt(t, [&, i, service]() {
            arrivals[i] = sim.now();
            inst.enqueue(std::make_shared<Query>(
                i, sim.now(),
                std::vector<WorkDemand>{{0.0, service}}));
        });
    }
    sim.run();
    ASSERT_EQ(n, 40000u);
    const double theory = 1.0 / (mu - lambda); // 1.25 s
    EXPECT_NEAR(sumSojourn / static_cast<double>(n), theory,
                0.08 * theory);
}

TEST(PropertyQueueing, UtilizationMatchesRho)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const int core = *chip.acquireCore(0);
    ServiceInstance inst(1, "S_1", 0, &sim, &chip, core, [](QueryPtr) {});

    const double mu = 4.0;
    const double lambda = 2.0;
    Rng rng(7);
    SimTime t;
    for (int i = 0; i < 20000; ++i) {
        t += SimTime::sec(rng.exponential(1.0 / lambda));
        const double service = rng.exponential(1.0 / mu);
        sim.scheduleAt(t, [&inst, i, service, &sim]() {
            inst.enqueue(std::make_shared<Query>(
                i, sim.now(),
                std::vector<WorkDemand>{{0.0, service}}));
        });
    }
    sim.run();
    const double horizon = sim.now().toSec();
    EXPECT_NEAR(inst.totalBusyTime().toSec() / horizon, 0.5, 0.03);
}

// --------------------------------------------- DVFS rescale reference

/**
 * Analytic reference: integrate progress across a piecewise-constant
 * frequency schedule and return the total service duration.
 */
double
referenceServiceSec(const WorkDemand &demand,
                    const std::vector<std::pair<double, int>> &changes,
                    const FrequencyLadder &ladder, int startLevel)
{
    double progress = 0.0;
    double t = 0.0;
    int level = startLevel;
    std::size_t next = 0;
    while (true) {
        const double total = demand.serviceSec(
            ladder.freqAt(level).value(), ladder.freqAt(0).value());
        const double finishAt = t + (1.0 - progress) * total;
        if (next < changes.size() && changes[next].first < finishAt) {
            progress += (changes[next].first - t) / total;
            t = changes[next].first;
            level = changes[next].second;
            ++next;
        } else {
            return finishAt;
        }
    }
}

class RescaleFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RescaleFuzz, RandomFrequencyScheduleMatchesReference)
{
    Rng rng(GetParam());
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 1);
    const auto &ladder = model.ladder();
    const int startLevel =
        static_cast<int>(rng.uniformInt(0, ladder.maxLevel()));
    const int core = *chip.acquireCore(startLevel);

    WorkDemand demand;
    demand.cpuSecAtRef = rng.uniform(0.5, 5.0);
    demand.memSec = rng.uniform(0.0, 1.0);

    // Random schedule of 1-8 frequency changes over the service.
    std::vector<std::pair<double, int>> changes;
    double t = 0.0;
    const int n = static_cast<int>(rng.uniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
        t += rng.uniform(0.05, 0.6);
        changes.push_back(
            {t, static_cast<int>(rng.uniformInt(0, ladder.maxLevel()))});
    }

    double served = -1.0;
    ServiceInstance inst(1, "S_1", 0, &sim, &chip, core,
                         [&](QueryPtr q) {
                             served = q->hops().back().serving().toSec();
                         });
    inst.enqueue(std::make_shared<Query>(
        1, sim.now(), std::vector<WorkDemand>{demand}));
    for (const auto &[when, level] : changes) {
        sim.scheduleAt(SimTime::sec(when), [&chip, core, level = level]() {
            if (chip.core(core).state() != Core::State::Offline)
                chip.core(core).setLevel(level);
        });
    }
    sim.run();

    const double expect =
        referenceServiceSec(demand, changes, ladder, startLevel);
    ASSERT_GE(served, 0.0);
    EXPECT_NEAR(served, expect, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RescaleFuzz,
                         testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------ window vs reference

TEST(PropertyWindow, MatchesNaiveReferenceUnderRandomStream)
{
    Rng rng(5);
    MovingWindow window(SimTime::sec(10));
    std::deque<std::pair<SimTime, double>> reference;
    SimTime t;
    for (int i = 0; i < 3000; ++i) {
        t += SimTime::msec(rng.uniform(0, 200));
        const double v = rng.uniform(0, 100);
        window.add(t, v);
        reference.push_back({t, v});
        const SimTime cutoff = t - SimTime::sec(10);
        while (!reference.empty() && reference.front().first < cutoff)
            reference.pop_front();

        ASSERT_EQ(window.size(), reference.size());
        double sum = 0;
        double mx = 0;
        for (const auto &[rt, rv] : reference) {
            sum += rv;
            mx = std::max(mx, rv);
        }
        ASSERT_NEAR(window.mean(),
                    sum / static_cast<double>(reference.size()), 1e-9);
        ASSERT_NEAR(window.max(), mx, 1e-12);
    }
}

// ---------------------------------------------------- budget fuzzing

TEST(PropertyBudget, RandomOperationSequencePreservesInvariants)
{
    const PowerModel model = PowerModel::haswell();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        PowerBudget budget(Watts(rng.uniform(5.0, 50.0)), &model);
        std::map<std::int64_t, int> reference;
        std::int64_t nextId = 1;

        for (int step = 0; step < 2000; ++step) {
            const double dice = rng.uniform(0, 1);
            if (dice < 0.4 || reference.empty()) {
                const int level = static_cast<int>(
                    rng.uniformInt(0, model.ladder().maxLevel()));
                const std::int64_t id = nextId++;
                if (budget.allocate(id, level))
                    reference[id] = level;
            } else if (dice < 0.7) {
                auto it = reference.begin();
                std::advance(it, rng.uniformInt(
                    0, static_cast<long>(reference.size()) - 1));
                const int level = static_cast<int>(
                    rng.uniformInt(0, model.ladder().maxLevel()));
                if (budget.updateLevel(it->first, level))
                    it->second = level;
            } else {
                auto it = reference.begin();
                std::advance(it, rng.uniformInt(
                    0, static_cast<long>(reference.size()) - 1));
                budget.release(it->first);
                reference.erase(it);
            }

            // Invariant 1: ledger equals the reference sum.
            double sum = 0.0;
            for (const auto &[id, level] : reference)
                sum += model.activeWatts(level).value();
            ASSERT_NEAR(budget.allocated().value(), sum, 1e-6);
            // Invariant 2: never exceeds the cap.
            ASSERT_LE(budget.allocated().value(),
                      budget.cap().value() + 1e-6);
            // Invariant 3: per-consumer levels agree.
            for (const auto &[id, level] : reference)
                ASSERT_EQ(budget.levelOf(id), level);
            ASSERT_EQ(budget.numConsumers(), reference.size());
        }
    }
}

} // namespace
} // namespace pc
