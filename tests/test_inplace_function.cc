/** @file Unit tests for the small-buffer callable wrapper. */

#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "common/inplace_function.h"

namespace pc {
namespace {

using Fn = InplaceFunction<int()>;

TEST(InplaceFunction, DefaultConstructedIsEmpty)
{
    Fn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.isInline());
}

TEST(InplaceFunction, SmallCaptureStoredInline)
{
    int x = 41;
    Fn fn([&x]() { return x + 1; });
    ASSERT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.isInline());
    EXPECT_EQ(fn(), 42);
}

TEST(InplaceFunction, RepresentativeEventCapturesFitInline)
{
    // The captures the simulator actually schedules: [this]-style,
    // [this, id], and the bus's [this, endpoint, shared_ptr<msg>].
    struct Probe
    {
        void *self;
        std::uint64_t id;
        std::shared_ptr<int> msg;
    };
    static_assert(sizeof(Probe) <= kInplaceFunctionBufferSize);

    auto msg = std::make_shared<int>(7);
    InplaceFunction<int()> fn(
        [self = static_cast<void *>(nullptr), id = std::uint64_t{3},
         msg]() { return *msg + static_cast<int>(id); });
    EXPECT_TRUE(fn.isInline());
    EXPECT_EQ(fn(), 10);
}

TEST(InplaceFunction, OversizedCaptureFallsBackToHeapAndStillWorks)
{
    struct Big
    {
        char bytes[2 * kInplaceFunctionBufferSize] = {};
    };
    Big big;
    big.bytes[0] = 9;
    Fn fn([big]() { return static_cast<int>(big.bytes[0]); });
    ASSERT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.isInline());
    EXPECT_EQ(fn(), 9);
}

TEST(InplaceFunction, MoveTransfersCallableAndEmptiesSource)
{
    int calls = 0;
    InplaceFunction<void()> a([&calls]() { ++calls; });
    InplaceFunction<void()> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);

    InplaceFunction<void()> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(calls, 2);
}

TEST(InplaceFunction, MoveTransfersHeapCallable)
{
    struct Big
    {
        char bytes[2 * kInplaceFunctionBufferSize] = {};
    };
    Big big;
    big.bytes[1] = 5;
    Fn a([big]() { return static_cast<int>(big.bytes[1]); });
    Fn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_FALSE(b.isInline());
    EXPECT_EQ(b(), 5);
}

TEST(InplaceFunction, DestructionReleasesCaptures)
{
    auto token = std::make_shared<int>(1);
    {
        InplaceFunction<void()> fn([token]() {});
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, MovedFromDoesNotDoubleRelease)
{
    auto token = std::make_shared<int>(1);
    {
        InplaceFunction<void()> a([token]() {});
        InplaceFunction<void()> b(std::move(a));
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, NullptrAssignmentClears)
{
    auto token = std::make_shared<int>(1);
    InplaceFunction<void()> fn([token]() {});
    EXPECT_EQ(token.use_count(), 2);
    fn = nullptr;
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, SupportsMoveOnlyCallables)
{
    auto owned = std::make_unique<int>(13);
    InplaceFunction<int()> fn(
        [owned = std::move(owned)]() { return *owned; });
    EXPECT_EQ(fn(), 13);
}

TEST(InplaceFunction, ArgumentsAndReturnForwarded)
{
    InplaceFunction<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(20, 22), 42);
}

} // namespace
} // namespace pc
