/** @file Unit tests for the control policies and actuation helpers. */

#include <gtest/gtest.h>

#include "core/policies.h"
#include "core/reallocator.h"
#include "core/speedup.h"

namespace pc {
namespace {

SpeedupTable
computeBoundTable(const FrequencyLadder &ladder)
{
    std::vector<double> r;
    for (const MHz f : ladder.frequencies())
        r.push_back(1200.0 / f.value());
    return SpeedupTable(std::move(r));
}

class PolicyTest : public testing::Test
{
  protected:
    PolicyTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 10),
          bus(&sim), cpufreq(&chip), e2e(SimTime::sec(30))
    {
        std::vector<StageSpec> specs = {
            {"A", 0, 0, DispatchPolicy::JoinShortestQueue},
            {"B", 0, 0, DispatchPolicy::JoinShortestQueue}};
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
        book.setStage(0, computeBoundTable(model.ladder()));
        book.setStage(1, computeBoundTable(model.ladder()));
    }

    void
    finishSetup(double capWatts)
    {
        budget = std::make_unique<PowerBudget>(Watts(capWatts), &model);
        realloc = std::make_unique<PowerReallocator>(budget.get(),
                                                     &cpufreq);
        engine = std::make_unique<BoostingDecisionEngine>(
            budget.get(), realloc.get(), &book);
        identifier = std::make_unique<BottleneckIdentifier>(
            SimTime::sec(50));
    }

    InstanceSnapshot
    addInstance(int stage, int level, double metric,
                std::size_t queue = 0, double q = 0.0, double s = 0.0)
    {
        auto *inst = app->stage(stage).launchInstance(level);
        EXPECT_TRUE(budget->allocate(inst->id(), level));
        InstanceSnapshot snap;
        snap.instanceId = inst->id();
        snap.name = inst->name();
        snap.stageIndex = stage;
        snap.coreId = inst->coreId();
        snap.level = level;
        snap.metric = metric;
        snap.queueLength = queue;
        snap.avgQueuingSec = q;
        snap.avgServingSec = s;
        return snap;
    }

    ControlContext
    makeContext(SortedSnapshots ranked)
    {
        ControlContext ctx;
        ctx.sim = &sim;
        ctx.app = app.get();
        ctx.cpufreq = &cpufreq;
        ctx.budget = budget.get();
        ctx.identifier = identifier.get();
        ctx.realloc = realloc.get();
        ctx.engine = engine.get();
        ctx.speedups = &book;
        ctx.cfg = &cfg;
        ctx.e2eLatency = &e2e;
        ctx.ranked = std::move(ranked);
        return ctx;
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    CpufreqDriver cpufreq;
    std::unique_ptr<MultiStageApp> app;
    SpeedupBook book;
    std::unique_ptr<PowerBudget> budget;
    std::unique_ptr<PowerReallocator> realloc;
    std::unique_ptr<BoostingDecisionEngine> engine;
    std::unique_ptr<BottleneckIdentifier> identifier;
    ControlConfig cfg;
    MovingWindow e2e{SimTime::sec(30)};
};

// ------------------------------------------------------------- actuate

TEST_F(PolicyTest, FrequencyBoostActuatesBudgetAndDvfs)
{
    finishSetup(1000.0);
    const auto bn = addInstance(0, 3, 1.0);
    auto ctx = makeContext({bn});
    EXPECT_TRUE(actuate::frequencyBoost(ctx, bn, 9));
    EXPECT_EQ(cpufreq.getLevel(bn.coreId), 9);
    EXPECT_EQ(budget->levelOf(bn.instanceId), 9);
}

TEST_F(PolicyTest, FrequencyBoostRefusesDownOrSame)
{
    finishSetup(1000.0);
    const auto bn = addInstance(0, 5, 1.0);
    auto ctx = makeContext({bn});
    EXPECT_FALSE(actuate::frequencyBoost(ctx, bn, 5));
    EXPECT_FALSE(actuate::frequencyBoost(ctx, bn, 3));
    EXPECT_EQ(cpufreq.getLevel(bn.coreId), 5);
}

TEST_F(PolicyTest, FrequencyBoostRespectsCap)
{
    finishSetup(PowerModel::haswell().activeWatts(5).value() + 0.1);
    const auto bn = addInstance(0, 5, 1.0);
    auto ctx = makeContext({bn});
    EXPECT_FALSE(actuate::frequencyBoost(ctx, bn, 12));
    EXPECT_EQ(cpufreq.getLevel(bn.coreId), 5);
}

TEST_F(PolicyTest, InstanceBoostClonesAndStealsHalf)
{
    finishSetup(1000.0);
    auto bn = addInstance(0, 4, 5.0);
    auto *victim = app->stage(0).findInstance(bn.instanceId);
    for (int i = 0; i < 5; ++i) { // 1 in service + 4 waiting
        victim->enqueue(std::make_shared<Query>(
            i, sim.now(),
            std::vector<WorkDemand>{{50.0, 0.0}, {}}));
    }
    auto ctx = makeContext({bn});
    ServiceInstance *clone = actuate::instanceBoost(ctx, bn);
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(clone->level(), 4);
    EXPECT_EQ(clone->queueLength(), 2u); // stole half of 4 waiting
    EXPECT_EQ(victim->waitingCount(), 2u);
    EXPECT_EQ(budget->levelOf(clone->id()), 4);
    EXPECT_EQ(app->stage(0).numLiveInstances(), 2u);
}

TEST_F(PolicyTest, InstanceBoostRefusedWhenOverCap)
{
    finishSetup(PowerModel::haswell().activeWatts(4).value() + 0.5);
    const auto bn = addInstance(0, 4, 5.0);
    auto ctx = makeContext({bn});
    EXPECT_EQ(actuate::instanceBoost(ctx, bn), nullptr);
    EXPECT_EQ(app->stage(0).numLiveInstances(), 1u);
}

TEST_F(PolicyTest, InstanceBoostRefusedWhenChipFull)
{
    finishSetup(1000.0);
    const auto bn = addInstance(0, 0, 5.0);
    while (chip.acquireCore(0))
        ; // exhaust remaining cores
    auto ctx = makeContext({bn});
    EXPECT_EQ(actuate::instanceBoost(ctx, bn), nullptr);
}

TEST_F(PolicyTest, StepDownOneLevel)
{
    finishSetup(1000.0);
    const auto inst = addInstance(0, 4, 1.0);
    auto ctx = makeContext({inst});
    EXPECT_TRUE(actuate::stepDown(ctx, inst));
    EXPECT_EQ(cpufreq.getLevel(inst.coreId), 3);
    const auto floor = addInstance(0, 0, 1.0);
    EXPECT_FALSE(actuate::stepDown(ctx, floor));
}

// ------------------------------------------------------------ policies

TEST_F(PolicyTest, StageAgnosticDoesNothing)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto b = addInstance(1, 6, 9.0);
    auto ctx = makeContext({a, b});
    StageAgnosticPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 6);
    EXPECT_EQ(cpufreq.getLevel(b.coreId), 6);
}

TEST_F(PolicyTest, FreqBoostRaisesBottleneckRecyclingDonors)
{
    finishSetup(2 * PowerModel::haswell().activeWatts(6).value());
    const auto donor = addInstance(0, 6, 0.5);
    const auto bn = addInstance(1, 6, 9.0);
    auto ctx = makeContext({donor, bn});
    FreqBoostPolicy policy;
    policy.onInterval(ctx);
    EXPECT_GT(cpufreq.getLevel(bn.coreId), 6);
    EXPECT_LT(cpufreq.getLevel(donor.coreId), 6);
}

TEST_F(PolicyTest, FreqBoostSkipsInsideBalanceThreshold)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto b = addInstance(1, 6, 1.5); // gap 0.5 < threshold 1.0
    auto ctx = makeContext({a, b});
    FreqBoostPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(b.coreId), 6);
}

TEST_F(PolicyTest, FreqBoostNoOpAtMaxLevel)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto bn = addInstance(1, 12, 9.0);
    auto ctx = makeContext({a, bn});
    FreqBoostPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 6); // nothing recycled
}

TEST_F(PolicyTest, InstBoostLaunchesCloneUnderCap)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto bn = addInstance(1, 6, 9.0);
    auto ctx = makeContext({a, bn});
    InstBoostPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(app->stage(1).numLiveInstances(), 2u);
}

TEST_F(PolicyTest, InstBoostStuckWhenRecyclingInsufficient)
{
    // Cap exactly two mid instances: recycling one donor frees ~2.88 W
    // which cannot fund a 4.52 W clone — the Fig. 11(b) plateau.
    finishSetup(2 * PowerModel::haswell().activeWatts(6).value());
    const auto donor = addInstance(0, 6, 0.5);
    const auto bn = addInstance(1, 6, 9.0);
    auto ctx = makeContext({donor, bn});
    InstBoostPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(app->stage(1).numLiveInstances(), 1u);
    // But the donor *was* drained in the attempt (paper's behaviour:
    // recycling happens before the affordability re-check).
    EXPECT_LT(cpufreq.getLevel(donor.coreId), 6);
}

TEST_F(PolicyTest, PowerChiefAdaptsToQueueLength)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 0.1);
    // Long queue: instance boosting expected.
    const auto bn = addInstance(1, 6, 9.0, /*queue=*/6, /*q=*/1.0,
                                /*s=*/1.0);
    auto ctx = makeContext({a, bn});
    PowerChiefPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(policy.instanceBoosts(), 1u);
    EXPECT_EQ(policy.frequencyBoosts(), 0u);
    EXPECT_EQ(app->stage(1).numLiveInstances(), 2u);

    // Short queue: frequency boosting expected.
    const auto bn2 = addInstance(1, 6, 9.0, /*queue=*/1, /*q=*/0.1,
                                 /*s=*/2.0);
    auto ctx2 = makeContext({a, bn2});
    policy.onInterval(ctx2);
    EXPECT_EQ(policy.frequencyBoosts(), 1u);
}

TEST_F(PolicyTest, PowerChiefFallsBackToFreqWhenChipFull)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 0.1);
    const auto bn = addInstance(1, 6, 9.0, 6, 1.0, 1.0);
    while (chip.acquireCore(0))
        ;
    auto ctx = makeContext({a, bn});
    PowerChiefPolicy policy;
    policy.onInterval(ctx);
    EXPECT_EQ(policy.instanceBoosts(), 0u);
    EXPECT_EQ(policy.frequencyBoosts(), 1u);
    EXPECT_GT(cpufreq.getLevel(bn.coreId), 6);
}

TEST_F(PolicyTest, FixedStageBoostsOnlyItsStage)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 9.0); // worst overall
    const auto b = addInstance(1, 6, 1.0);
    auto ctx = makeContext({b, a});
    FixedStageBoostPolicy policy(1, BoostKind::Frequency);
    policy.onInterval(ctx);
    EXPECT_GT(cpufreq.getLevel(b.coreId), 6);  // its stage boosted
}

TEST_F(PolicyTest, FixedStageInstanceTechnique)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto b = addInstance(1, 6, 2.0);
    auto ctx = makeContext({a, b});
    FixedStageBoostPolicy policy(0, BoostKind::Instance);
    policy.onInterval(ctx);
    EXPECT_EQ(app->stage(0).numLiveInstances(), 2u);
    EXPECT_EQ(app->stage(1).numLiveInstances(), 1u);
}

TEST_F(PolicyTest, PegasusRacesToMaxOnViolation)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 5, 1.0);
    const auto b = addInstance(1, 5, 2.0);
    e2e.add(sim.now(), 3.0); // above the 2 s target
    auto ctx = makeContext({a, b});
    PegasusPolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 12);
    EXPECT_EQ(cpufreq.getLevel(b.coreId), 12);
}

TEST_F(PolicyTest, PegasusHoldsInsideBand)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 5, 1.0);
    e2e.add(sim.now(), 1.8); // 0.9 of target: hold
    auto ctx = makeContext({a});
    PegasusPolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 5);
}

TEST_F(PolicyTest, PegasusStepsAllDownUniformly)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 5, 1.0);
    const auto b = addInstance(1, 7, 2.0);
    e2e.add(sim.now(), 0.5); // deep slack
    auto ctx = makeContext({a, b});
    PegasusPolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 4);
    EXPECT_EQ(cpufreq.getLevel(b.coreId), 6);
}

TEST_F(PolicyTest, PegasusIgnoresEmptyWindow)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 5, 1.0);
    auto ctx = makeContext({a});
    PegasusPolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 5);
}

TEST_F(PolicyTest, PegasusTailSignalMorePessimistic)
{
    finishSetup(1000.0);
    const auto a = addInstance(0, 5, 1.0);
    // Mean ~0.84 but p99 = 3.0: tail-guarded Pegasus must not conserve.
    for (int i = 0; i < 90; ++i)
        e2e.add(sim.now(), 0.6);
    for (int i = 0; i < 10; ++i)
        e2e.add(sim.now(), 3.0);
    auto ctx = makeContext({a});
    PegasusPolicy tailPolicy(2.0, /*useTail=*/true);
    tailPolicy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(a.coreId), 12); // raced to max
}

TEST_F(PolicyTest, ConservePolicyStepsOnlyFastest)
{
    finishSetup(1000.0);
    const auto fast = addInstance(0, 8, 0.2);
    const auto slow = addInstance(1, 8, 5.0);
    e2e.add(sim.now(), 0.5); // deep slack vs target 2.0
    auto ctx = makeContext({fast, slow});
    PowerChiefConservePolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(fast.coreId), 7);
    EXPECT_EQ(cpufreq.getLevel(slow.coreId), 8);
}

TEST_F(PolicyTest, ConservePolicySkipsFlooredFastest)
{
    finishSetup(1000.0);
    const auto fast = addInstance(0, 0, 0.2); // already at the floor
    const auto slow = addInstance(1, 8, 5.0);
    e2e.add(sim.now(), 0.5);
    auto ctx = makeContext({fast, slow});
    PowerChiefConservePolicy policy(2.0);
    policy.onInterval(ctx);
    // Falls through to the next instance in metric order.
    EXPECT_EQ(cpufreq.getLevel(slow.coreId), 7);
}

TEST_F(PolicyTest, ConservePolicyBoostsWhenQoSThreatened)
{
    finishSetup(1000.0);
    const auto fast = addInstance(0, 8, 0.2);
    const auto slow = addInstance(1, 8, 5.0, /*queue=*/1, /*q=*/0.2,
                                  /*s=*/1.5);
    e2e.add(sim.now(), 1.95); // 0.975 of target
    auto ctx = makeContext({fast, slow});
    PowerChiefConservePolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_GT(cpufreq.getLevel(slow.coreId), 8);
}

TEST_F(PolicyTest, ConservePolicyHoldBand)
{
    finishSetup(1000.0);
    const auto fast = addInstance(0, 8, 0.2);
    e2e.add(sim.now(), 1.8); // 0.9: inside [0.85, 0.95) hold band
    auto ctx = makeContext({fast});
    PowerChiefConservePolicy policy(2.0);
    policy.onInterval(ctx);
    EXPECT_EQ(cpufreq.getLevel(fast.coreId), 8);
}

TEST_F(PolicyTest, BalanceGapComputation)
{
    finishSetup(1000.0);
    auto ctx = makeContext({});
    EXPECT_DOUBLE_EQ(ctx.balanceGap(), 0.0);
    const auto a = addInstance(0, 6, 1.0);
    const auto b = addInstance(1, 6, 3.5);
    auto ctx2 = makeContext({a, b});
    EXPECT_DOUBLE_EQ(ctx2.balanceGap(), 2.5);
}

TEST_F(PolicyTest, PolicyNames)
{
    EXPECT_STREQ(StageAgnosticPolicy().name(), "stage-agnostic");
    EXPECT_STREQ(FreqBoostPolicy().name(), "freq-boosting");
    EXPECT_STREQ(InstBoostPolicy().name(), "inst-boosting");
    EXPECT_STREQ(PowerChiefPolicy().name(), "powerchief");
    EXPECT_STREQ(PegasusPolicy(1.0).name(), "pegasus");
    EXPECT_STREQ(PowerChiefConservePolicy(1.0).name(),
                 "powerchief-conserve");
}

TEST(PolicyDeath, FixedStageNeedsTechnique)
{
    EXPECT_EXIT(FixedStageBoostPolicy(0, BoostKind::None),
                testing::ExitedWithCode(1), "technique");
}

TEST(PolicyDeath, QosPoliciesNeedPositiveTarget)
{
    EXPECT_EXIT(PegasusPolicy(0.0), testing::ExitedWithCode(1), "QoS");
    EXPECT_EXIT(PowerChiefConservePolicy(-1.0),
                testing::ExitedWithCode(1), "target");
}

} // namespace
} // namespace pc
