/** @file Unit tests for scenarios and the experiment runner. */

#include <gtest/gtest.h>

#include "exp/runner.h"

namespace pc {
namespace {

TEST(Scenario, MitigationDefaultsMatchTableTwo)
{
    const auto sc = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::High,
                                         PolicyKind::PowerChief);
    EXPECT_NEAR(sc.powerBudget.value(), 13.56, 1e-9);
    EXPECT_EQ(sc.control.adjustInterval, SimTime::sec(25));
    EXPECT_EQ(sc.control.withdrawInterval, SimTime::sec(150));
    EXPECT_DOUBLE_EQ(sc.control.balanceThresholdSec, 1.0);
    EXPECT_TRUE(sc.control.enableWithdraw);
    EXPECT_EQ(sc.initialCounts, (std::vector<int>{1, 1, 1}));
    EXPECT_EQ(sc.duration, SimTime::sec(900));
}

TEST(Scenario, MitigationWithdrawOnlyForPowerChief)
{
    EXPECT_FALSE(Scenario::mitigation(WorkloadModel::sirius(),
                                      LoadLevel::Low,
                                      PolicyKind::FreqBoost)
                     .control.enableWithdraw);
    EXPECT_FALSE(Scenario::mitigation(WorkloadModel::sirius(),
                                      LoadLevel::Low,
                                      PolicyKind::InstBoost)
                     .control.enableWithdraw);
}

TEST(Scenario, ConservationDefaultsMatchTableThree)
{
    const auto sc = Scenario::conservation(
        WorkloadModel::webSearch(), {10, 1}, 0.25, SimTime::sec(2),
        PolicyKind::Pegasus);
    EXPECT_EQ(sc.initialCounts, (std::vector<int>{10, 1}));
    EXPECT_EQ(sc.control.adjustInterval, SimTime::sec(2));
    EXPECT_DOUBLE_EQ(sc.qosTargetSec, 0.25);
    EXPECT_TRUE(sc.qosUseTail); // Pegasus guards the raw tail signal
    EXPECT_FALSE(sc.control.enableWithdraw);
    EXPECT_GT(sc.powerBudget.value(), 100.0); // effectively uncapped
}

TEST(Scenario, ConservationPowerChiefEnablesWithdraw)
{
    const auto sc = Scenario::conservation(
        WorkloadModel::webSearch(), {10, 1}, 0.25, SimTime::sec(2),
        PolicyKind::PowerChiefConserve);
    EXPECT_TRUE(sc.control.enableWithdraw);
    EXPECT_FALSE(sc.qosUseTail);
}

TEST(Scenario, PolicyKindNames)
{
    EXPECT_STREQ(toString(PolicyKind::StageAgnostic), "baseline");
    EXPECT_STREQ(toString(PolicyKind::FreqBoost), "freq-boost");
    EXPECT_STREQ(toString(PolicyKind::InstBoost), "inst-boost");
    EXPECT_STREQ(toString(PolicyKind::PowerChief), "powerchief");
    EXPECT_STREQ(toString(PolicyKind::FastCap), "fastcap");
    EXPECT_STREQ(toString(PolicyKind::CuttleSys), "cuttlesys");
}

TEST(Scenario, PolicyKindNamesRoundTrip)
{
    for (const PolicyKind kind : allPolicyKinds()) {
        PolicyKind parsed = PolicyKind::Count;
        ASSERT_TRUE(parsePolicyKind(toString(kind), &parsed))
            << toString(kind);
        EXPECT_EQ(parsed, kind);
    }
    PolicyKind parsed = PolicyKind::Count;
    EXPECT_FALSE(parsePolicyKind("no-such-policy", &parsed));
    // Historical aliases still resolve.
    EXPECT_TRUE(parsePolicyKind("freq", &parsed));
    EXPECT_EQ(parsed, PolicyKind::FreqBoost);
    EXPECT_TRUE(parsePolicyKind("conserve", &parsed));
    EXPECT_EQ(parsed, PolicyKind::PowerChiefConserve);
}

TEST(RunResult, ImprovementRatio)
{
    EXPECT_DOUBLE_EQ(RunResult::improvement(10.0, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(RunResult::improvement(10.0, 0.0), 0.0);
}

class RunnerTest : public testing::Test
{
  protected:
    Scenario
    shortScenario(PolicyKind policy, LoadLevel level = LoadLevel::Medium)
    {
        Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                           level, policy, /*seed=*/7);
        sc.duration = SimTime::sec(150);
        sc.warmup = SimTime::sec(10);
        return sc;
    }
};

TEST_F(RunnerTest, BaselineRunProducesCompletions)
{
    const ExperimentRunner runner;
    const auto r = runner.run(shortScenario(PolicyKind::StageAgnostic));
    EXPECT_GT(r.completed, 0u);
    EXPECT_LE(r.completed, r.submitted);
    EXPECT_GT(r.avgLatencySec, 0.0);
    EXPECT_GE(r.p99LatencySec, r.avgLatencySec);
    EXPECT_GE(r.maxLatencySec, r.p99LatencySec);
    EXPECT_GT(r.avgPowerWatts, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
}

TEST_F(RunnerTest, DeterministicForSameSeed)
{
    const ExperimentRunner runner;
    const auto a = runner.run(shortScenario(PolicyKind::PowerChief));
    const auto b = runner.run(shortScenario(PolicyKind::PowerChief));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.avgLatencySec, b.avgLatencySec);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.avgPowerWatts, b.avgPowerWatts);
}

TEST_F(RunnerTest, SeedChangesTheRun)
{
    const ExperimentRunner runner;
    auto sc = shortScenario(PolicyKind::StageAgnostic);
    const auto a = runner.run(sc);
    sc.seed = 8;
    const auto b = runner.run(sc);
    EXPECT_NE(a.avgLatencySec, b.avgLatencySec);
}

TEST_F(RunnerTest, TracesOnlyWhenRequested)
{
    auto sc = shortScenario(PolicyKind::StageAgnostic);
    const auto bare = ExperimentRunner(false).run(sc);
    EXPECT_TRUE(bare.powerSeries.empty());
    EXPECT_TRUE(bare.latencySeries.empty());
    EXPECT_TRUE(bare.instanceFrequencyGHz.empty());

    const auto traced = ExperimentRunner(true).run(sc);
    EXPECT_FALSE(traced.powerSeries.empty());
    EXPECT_FALSE(traced.latencySeries.empty());
    EXPECT_EQ(traced.stageInstanceCounts.size(), 3u);
    EXPECT_GE(traced.instanceFrequencyGHz.size(), 3u);
}

TEST_F(RunnerTest, StageBreakdownFollowsLoad)
{
    const ExperimentRunner runner;
    const auto light =
        runner.run(shortScenario(PolicyKind::StageAgnostic,
                                 LoadLevel::Low));
    const auto heavy =
        runner.run(shortScenario(PolicyKind::StageAgnostic,
                                 LoadLevel::High));
    ASSERT_EQ(light.stageBreakdown.size(), 3u);
    ASSERT_EQ(heavy.stageBreakdown.size(), 3u);
    // QA (stage 2) dominates Sirius; at high load its queuing share
    // explodes while at low load serving dominates — the 2.3 mechanism.
    EXPECT_LT(light.stageBreakdown[2].queuingShare(), 0.5);
    EXPECT_GT(heavy.stageBreakdown[2].queuingShare(), 0.9);
    // Serving time itself barely moves with load.
    EXPECT_NEAR(light.stageBreakdown[2].avgServingSec,
                heavy.stageBreakdown[2].avgServingSec,
                0.4 * light.stageBreakdown[2].avgServingSec);
    // Hops counted for every completed post-warmup query.
    EXPECT_GT(heavy.stageBreakdown[0].hops, 0u);
}

TEST_F(RunnerTest, MetricOverrideIsApplied)
{
    // A run with a different metric must still work end to end.
    auto sc = shortScenario(PolicyKind::PowerChief);
    sc.metricFactory = [] {
        return std::make_unique<AvgProcessingMetric>();
    };
    const auto r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 0u);
}

TEST_F(RunnerTest, RecycleOverrideIsApplied)
{
    auto sc = shortScenario(PolicyKind::PowerChief);
    sc.recycleFactory = [] {
        return std::make_unique<SlowestFirstOrder>();
    };
    const auto r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 0u);
}

TEST_F(RunnerTest, ConservationScenarioRuns)
{
    Scenario sc = Scenario::conservation(
        WorkloadModel::webSearch(), {4, 1}, 0.25, SimTime::sec(2),
        PolicyKind::PowerChiefConserve, /*seed=*/5);
    sc.load = LoadProfile::constant(10.0);
    sc.duration = SimTime::sec(120);
    const auto r = ExperimentRunner().run(sc);
    EXPECT_GT(r.completed, 900u); // ~10 qps * 120 s
    EXPECT_LT(r.avgLatencySec, 0.25);
}

} // namespace
} // namespace pc
