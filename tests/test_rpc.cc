/** @file Unit tests for the RPC message bus. */

#include <gtest/gtest.h>

#include "rpc/bus.h"

namespace pc {
namespace {

class TextMessage : public Message
{
  public:
    explicit TextMessage(std::string t) : text(std::move(t)) {}
    const char *type() const override { return "text"; }
    std::string text;
};

class BusTest : public testing::Test
{
  protected:
    BusTest() : bus(&sim) {}

    Simulator sim;
    MessageBus bus;
};

TEST_F(BusTest, RegisterAndLookup)
{
    const EndpointId id = bus.registerEndpoint("svc/a", [](auto &) {});
    EXPECT_NE(id, 0u);
    ASSERT_TRUE(bus.lookup("svc/a").has_value());
    EXPECT_EQ(*bus.lookup("svc/a"), id);
    EXPECT_FALSE(bus.lookup("svc/b").has_value());
}

TEST_F(BusTest, SendDeliversToHandler)
{
    std::string got;
    const EndpointId id = bus.registerEndpoint(
        "svc", [&](const MessagePtr &msg) {
            got = dynamic_cast<const TextMessage &>(*msg).text;
        });
    bus.send(id, std::make_shared<TextMessage>("hello"));
    sim.run();
    EXPECT_EQ(got, "hello");
    EXPECT_EQ(bus.messagesDelivered(), 1u);
}

TEST_F(BusTest, DeliveryIsAsynchronous)
{
    bool delivered = false;
    const EndpointId id = bus.registerEndpoint(
        "svc", [&](const MessagePtr &) { delivered = true; });
    bus.send(id, std::make_shared<TextMessage>("x"));
    EXPECT_FALSE(delivered); // not before the event fires
    sim.run();
    EXPECT_TRUE(delivered);
}

TEST_F(BusTest, DeliveryDelayApplies)
{
    SimTime at;
    const EndpointId id = bus.registerEndpoint(
        "svc", [&](const MessagePtr &) { at = sim.now(); });
    bus.setDeliveryDelay(SimTime::msec(5));
    bus.send(id, std::make_shared<TextMessage>("x"));
    sim.run();
    EXPECT_EQ(at, SimTime::msec(5));
    EXPECT_EQ(bus.deliveryDelay(), SimTime::msec(5));
}

TEST_F(BusTest, UnregisteredEndpointDropsInFlight)
{
    const EndpointId id = bus.registerEndpoint("svc", [](auto &) {});
    bus.send(id, std::make_shared<TextMessage>("x"));
    bus.unregisterEndpoint(id);
    sim.run();
    EXPECT_EQ(bus.messagesDelivered(), 0u);
    EXPECT_EQ(bus.messagesDropped(), 1u);
}

TEST_F(BusTest, UnregisterFreesName)
{
    const EndpointId id = bus.registerEndpoint("svc", [](auto &) {});
    bus.unregisterEndpoint(id);
    EXPECT_FALSE(bus.lookup("svc").has_value());
    EXPECT_NE(bus.registerEndpoint("svc", [](auto &) {}), 0u);
}

TEST_F(BusTest, MultipleEndpointsIsolated)
{
    int a = 0;
    int b = 0;
    const EndpointId ea =
        bus.registerEndpoint("a", [&](auto &) { ++a; });
    const EndpointId eb =
        bus.registerEndpoint("b", [&](auto &) { ++b; });
    bus.send(ea, std::make_shared<TextMessage>("1"));
    bus.send(ea, std::make_shared<TextMessage>("2"));
    bus.send(eb, std::make_shared<TextMessage>("3"));
    sim.run();
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 1);
}

TEST_F(BusTest, FifoOrderPreserved)
{
    std::vector<std::string> order;
    const EndpointId id = bus.registerEndpoint(
        "svc", [&](const MessagePtr &msg) {
            order.push_back(
                dynamic_cast<const TextMessage &>(*msg).text);
        });
    bus.send(id, std::make_shared<TextMessage>("1"));
    bus.send(id, std::make_shared<TextMessage>("2"));
    bus.send(id, std::make_shared<TextMessage>("3"));
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(BusTest, HandlerMaySendMore)
{
    int hops = 0;
    EndpointId id = 0;
    id = bus.registerEndpoint("svc", [&](const MessagePtr &) {
        if (++hops < 3)
            bus.send(id, std::make_shared<TextMessage>("again"));
    });
    bus.send(id, std::make_shared<TextMessage>("start"));
    sim.run();
    EXPECT_EQ(hops, 3);
}

TEST(BusDeath, DuplicateNameIsFatal)
{
    Simulator sim;
    MessageBus bus(&sim);
    bus.registerEndpoint("same", [](auto &) {});
    EXPECT_EXIT(bus.registerEndpoint("same", [](auto &) {}),
                testing::ExitedWithCode(1), "already registered");
}

TEST(BusDeath, NullMessagePanics)
{
    Simulator sim;
    MessageBus bus(&sim);
    const EndpointId id = bus.registerEndpoint("svc", [](auto &) {});
    EXPECT_DEATH(bus.send(id, nullptr), "null message");
}

TEST(BusDeath, UnregisterUnknownPanics)
{
    Simulator sim;
    MessageBus bus(&sim);
    EXPECT_DEATH(bus.unregisterEndpoint(99), "unknown endpoint");
}

} // namespace
} // namespace pc
