/** @file Unit tests for the instance-withdraw monitor (§6.2). */

#include <gtest/gtest.h>

#include "core/withdraw.h"

namespace pc {
namespace {

class WithdrawTest : public testing::Test
{
  protected:
    WithdrawTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim),
          budget(Watts(1000.0), &model)
    {
        std::vector<StageSpec> specs = {
            {"S", 2, 0, DispatchPolicy::JoinShortestQueue}};
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
        for (const auto *inst : app->allInstances())
            EXPECT_TRUE(budget.allocate(inst->id(), 0));
        monitor = std::make_unique<WithdrawMonitor>(&sim, app.get(),
                                                    &budget);
    }

    /** Busy an instance for @p busySec within the next interval. */
    void
    occupy(ServiceInstance *inst, double busySec)
    {
        // cpuRef at 1.2 GHz core: serviceSec == cpuSecAtRef.
        inst->enqueue(std::make_shared<Query>(
            nextId++, sim.now(),
            std::vector<WorkDemand>{{busySec, 0.0}}));
    }

    SortedSnapshots
    rankedOf()
    {
        SortedSnapshots out;
        double metric = 0.0;
        for (const auto *inst : app->stage(0).instances()) {
            InstanceSnapshot s;
            s.instanceId = inst->id();
            s.stageIndex = 0;
            s.coreId = inst->coreId();
            s.level = inst->level();
            s.metric = metric += 1.0;
            out.push_back(s);
        }
        return out;
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    PowerBudget budget;
    std::unique_ptr<MultiStageApp> app;
    std::unique_ptr<WithdrawMonitor> monitor;
    std::int64_t nextId = 1;
};

TEST_F(WithdrawTest, FirstCheckOnlyBaselines)
{
    sim.runUntil(SimTime::sec(10));
    EXPECT_TRUE(monitor->checkAndWithdraw(rankedOf()).empty());
    EXPECT_EQ(app->stage(0).numLiveInstances(), 2u);
}

TEST_F(WithdrawTest, UnderutilizedInstanceWithdrawn)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf()); // baseline
    // Keep instance 0 busy ~50%, instance 1 idle (~0%).
    auto live = app->stage(0).instances();
    occupy(live[0], 5.0);
    sim.runUntil(SimTime::sec(11));
    const auto withdrawn = monitor->checkAndWithdraw(rankedOf());
    ASSERT_EQ(withdrawn.size(), 1u);
    EXPECT_EQ(withdrawn[0], live[1]->id());
    sim.run();
    EXPECT_EQ(app->stage(0).numLiveInstances(), 1u);
    EXPECT_EQ(budget.numConsumers(), 1u);
}

TEST_F(WithdrawTest, BusyInstancesStay)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    occupy(live[0], 5.0); // 50% util over the 10 s interval
    occupy(live[1], 3.0); // 30% util
    sim.runUntil(SimTime::sec(11));
    EXPECT_TRUE(monitor->checkAndWithdraw(rankedOf()).empty());
    EXPECT_EQ(app->stage(0).numLiveInstances(), 2u);
}

TEST_F(WithdrawTest, UtilizationJustBelowThresholdTriggers)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    occupy(live[0], 5.0);
    occupy(live[1], 1.5); // 15% < 20%
    sim.runUntil(SimTime::sec(11));
    const auto withdrawn = monitor->checkAndWithdraw(rankedOf());
    ASSERT_EQ(withdrawn.size(), 1u);
    EXPECT_EQ(withdrawn[0], live[1]->id());
}

TEST_F(WithdrawTest, UtilizationAtThresholdStays)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    occupy(live[0], 5.0);
    occupy(live[1], 2.0); // exactly 20%: not < threshold
    sim.runUntil(SimTime::sec(11));
    EXPECT_TRUE(monitor->checkAndWithdraw(rankedOf()).empty());
}

TEST_F(WithdrawTest, LastInstanceNeverWithdrawn)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    // Withdraw one legitimately...
    occupy(live[0], 8.0);
    sim.runUntil(SimTime::sec(11));
    ASSERT_EQ(monitor->checkAndWithdraw(rankedOf()).size(), 1u);
    sim.run();
    // ...then the survivor idles completely but must stay.
    sim.runUntil(SimTime::sec(30));
    EXPECT_TRUE(monitor->checkAndWithdraw(rankedOf()).empty());
    EXPECT_EQ(app->stage(0).numLiveInstances(), 1u);
}

TEST_F(WithdrawTest, AtMostOnePerStagePerInterval)
{
    // Three idle instances; only one may go per check.
    auto *extra = app->stage(0).launchInstance(0);
    ASSERT_TRUE(budget.allocate(extra->id(), 0));
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    occupy(live[0], 9.0); // keep one busy
    sim.runUntil(SimTime::sec(11));
    EXPECT_EQ(monitor->checkAndWithdraw(rankedOf()).size(), 1u);
}

TEST_F(WithdrawTest, UtilizationValuesExposed)
{
    sim.runUntil(SimTime::sec(1));
    monitor->checkAndWithdraw(rankedOf());
    auto live = app->stage(0).instances();
    occupy(live[0], 5.0);
    sim.runUntil(SimTime::sec(11));
    monitor->checkAndWithdraw(rankedOf());
    const auto util = monitor->lastUtilizationFor(live[0]->id());
    ASSERT_TRUE(util.has_value());
    EXPECT_NEAR(*util, 0.5, 0.01);
    EXPECT_FALSE(monitor->lastUtilizationFor(9999999).has_value());
}

TEST_F(WithdrawTest, ThresholdAccessor)
{
    EXPECT_DOUBLE_EQ(monitor->utilizationThreshold(), 0.2);
}

TEST(WithdrawDeath, BadThresholdIsFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    MessageBus bus(&sim);
    std::vector<StageSpec> specs = {
        {"S", 1, 0, DispatchPolicy::JoinShortestQueue}};
    MultiStageApp app(&sim, &chip, &bus, "app", specs);
    PowerBudget budget(Watts(10.0), &model);
    EXPECT_EXIT(WithdrawMonitor(&sim, &app, &budget, 0.0),
                testing::ExitedWithCode(1), "threshold");
    EXPECT_EXIT(WithdrawMonitor(&sim, &app, &budget, 1.0),
                testing::ExitedWithCode(1), "threshold");
}

} // namespace
} // namespace pc
