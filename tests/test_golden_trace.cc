/**
 * @file
 * Golden-trace regression: the Fig. 11 runtime trace for a fixed seed,
 * serialized through the result-cache JSON codec, must replay
 * byte-for-byte against its pinned file in tests/golden/ — for
 * PowerChief and for the FastCap/CuttleSys rival policies.
 *
 * Any change to the simulator's event ordering, the RNG streams, the
 * control loop, or the JSON codec shows up here as a byte diff.
 * To regenerate after an *intentional* behaviour change:
 *
 *   PC_UPDATE_GOLDEN=1 ./tests/test_golden_trace
 *
 * and commit the rewritten golden files with the change that caused it.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/runner.h"

namespace pc {
namespace {

struct GoldenCase
{
    PolicyKind policy;
    /** File name under tests/golden/. */
    const char *file;
};

// PowerChief keeps its historical file name; the rivals pin
// <policy>_fig11_trace.json, the names trace-diff --fresh-golden and
// the ctest tolerance gates use.
const GoldenCase kGoldenCases[] = {
    {PolicyKind::PowerChief, "fig11_trace.json"},
    {PolicyKind::FastCap, "fastcap_fig11_trace.json"},
    {PolicyKind::CuttleSys, "cuttlesys_fig11_trace.json"},
};

std::string
goldenPath(const char *file)
{
    return std::string(PC_SOURCE_DIR) + "/golden/" + file;
}

class GoldenTrace : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenTrace, Fig11ReplaysByteStable)
{
    const GoldenCase &gc = GetParam();
    // The pinned scenarios live in Scenario::goldenFig11For() so the
    // trace-diff tolerance gates replay the identical runs.
    const ExperimentRunner runner(/*recordTraces=*/true);
    const std::string fresh =
        runResultToJson(
            runner.run(Scenario::goldenFig11For(gc.policy)))
            .dump() +
        "\n";

    if (std::getenv("PC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(gc.file), std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath(gc.file);
        out << fresh;
        GTEST_SKIP() << "golden file regenerated";
    }

    std::ifstream in(goldenPath(gc.file), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath(gc.file)
        << " — run with PC_UPDATE_GOLDEN=1 to create it";
    std::ostringstream stored;
    stored << in.rdbuf();

    // Byte equality, not structural equality: the golden file also
    // pins the serialization format.
    EXPECT_EQ(stored.str(), fresh)
        << "Fig. 11 trace diverged from tests/golden/" << gc.file
        << ". If the behaviour change is intentional, regenerate with "
           "PC_UPDATE_GOLDEN=1.";
}

TEST_P(GoldenTrace, GoldenFileParsesAndRoundTrips)
{
    const GoldenCase &gc = GetParam();
    std::ifstream in(goldenPath(gc.file), std::ios::binary);
    if (!in.good())
        GTEST_SKIP() << "golden file not generated yet";
    std::ostringstream stored;
    stored << in.rdbuf();

    std::string text = stored.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    const JsonParseResult doc = parseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.error;
    const std::optional<RunResult> result =
        runResultFromJson(*doc.value);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(runResultToJson(*result).dump(), text);
    EXPECT_GT(result->completed, 0u);
    EXPECT_FALSE(result->latencySeries.points().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, GoldenTrace, ::testing::ValuesIn(kGoldenCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        switch (info.param.policy) {
          case PolicyKind::PowerChief: return std::string("PowerChief");
          case PolicyKind::FastCap: return std::string("FastCap");
          case PolicyKind::CuttleSys: return std::string("CuttleSys");
          default: return std::string("Unknown");
        }
    });

} // namespace
} // namespace pc
