/**
 * @file
 * Golden-trace regression: the Fig. 11 PowerChief trace for a fixed
 * seed, serialized through the result-cache JSON codec, must replay
 * byte-for-byte against tests/golden/fig11_trace.json.
 *
 * Any change to the simulator's event ordering, the RNG streams, the
 * control loop, or the JSON codec shows up here as a byte diff.
 * To regenerate after an *intentional* behaviour change:
 *
 *   PC_UPDATE_GOLDEN=1 ./tests/test_golden_trace
 *
 * and commit the rewritten golden file with the change that caused it.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/runner.h"

namespace pc {
namespace {

std::string
goldenPath()
{
    return std::string(PC_SOURCE_DIR) + "/golden/fig11_trace.json";
}

TEST(GoldenTrace, Fig11ReplaysByteStable)
{
    // The pinned scenario lives in Scenario::goldenFig11() so the
    // trace-diff tolerance gate replays the identical run.
    const ExperimentRunner runner(/*recordTraces=*/true);
    const std::string fresh =
        runResultToJson(runner.run(Scenario::goldenFig11())).dump() +
        "\n";

    if (std::getenv("PC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << fresh;
        GTEST_SKIP() << "golden file regenerated";
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << " — run with PC_UPDATE_GOLDEN=1 to create it";
    std::ostringstream stored;
    stored << in.rdbuf();

    // Byte equality, not structural equality: the golden file also
    // pins the serialization format.
    EXPECT_EQ(stored.str(), fresh)
        << "Fig. 11 trace diverged from tests/golden/fig11_trace.json. "
           "If the behaviour change is intentional, regenerate with "
           "PC_UPDATE_GOLDEN=1.";
}

TEST(GoldenTrace, GoldenFileParsesAndRoundTrips)
{
    std::ifstream in(goldenPath(), std::ios::binary);
    if (!in.good())
        GTEST_SKIP() << "golden file not generated yet";
    std::ostringstream stored;
    stored << in.rdbuf();

    std::string text = stored.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    const JsonParseResult doc = parseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.error;
    const std::optional<RunResult> result =
        runResultFromJson(*doc.value);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(runResultToJson(*result).dump(), text);
    EXPECT_GT(result->completed, 0u);
    EXPECT_FALSE(result->latencySeries.points().empty());
}

} // namespace
} // namespace pc
