/** @file Unit tests for the power reallocator (Algorithm 2). */

#include <gtest/gtest.h>

#include "core/reallocator.h"
#include "app/pipeline.h"

namespace pc {
namespace {

class ReallocTest : public testing::Test
{
  protected:
    ReallocTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 8), bus(&sim),
          budget(Watts(1000.0), &model), cpufreq(&chip)
    {
        std::vector<StageSpec> specs = {
            {"S", 0, 0, DispatchPolicy::JoinShortestQueue}};
        app = std::make_unique<MultiStageApp>(&sim, &chip, &bus, "app",
                                              specs);
    }

    /** Launch an instance at @p level and register it with the budget. */
    InstanceSnapshot
    addInstance(int level, double metric)
    {
        auto *inst = app->stage(0).launchInstance(level);
        EXPECT_TRUE(budget.allocate(inst->id(), level));
        InstanceSnapshot s;
        s.instanceId = inst->id();
        s.name = inst->name();
        s.stageIndex = 0;
        s.coreId = inst->coreId();
        s.level = level;
        s.metric = metric;
        return s;
    }

    double
    watts(int level) const
    {
        return model.activeWatts(level).value();
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    PowerBudget budget;
    CpufreqDriver cpufreq;
    std::unique_ptr<MultiStageApp> app;
};

TEST_F(ReallocTest, RecycleFromInstanceSmallestCoveringStep)
{
    PowerReallocator realloc(&budget, &cpufreq);
    const auto inst = addInstance(6, 1.0);
    const Watts need(1.0);
    const Watts got = realloc.recycleFromInstance(inst, need);
    // The chosen level is the *highest* level below 6 that frees >= 1 W.
    int expectLevel = 0;
    for (int lvl = 5; lvl >= 0; --lvl) {
        if (watts(6) - watts(lvl) >= 1.0) {
            expectLevel = lvl;
            break;
        }
    }
    EXPECT_EQ(cpufreq.getLevel(inst.coreId), expectLevel);
    EXPECT_NEAR(got.value(), watts(6) - watts(expectLevel), 1e-9);
    EXPECT_GE(got.value(), 1.0);
    EXPECT_EQ(budget.levelOf(inst.instanceId), expectLevel);
}

TEST_F(ReallocTest, RecycleFromInstanceFloorsWhenInsufficient)
{
    PowerReallocator realloc(&budget, &cpufreq);
    const auto inst = addInstance(6, 1.0);
    const Watts got =
        realloc.recycleFromInstance(inst, Watts(100.0));
    EXPECT_EQ(cpufreq.getLevel(inst.coreId), 0);
    EXPECT_NEAR(got.value(), watts(6) - watts(0), 1e-9);
}

TEST_F(ReallocTest, RecycleFromFloorInstanceYieldsNothing)
{
    PowerReallocator realloc(&budget, &cpufreq);
    const auto inst = addInstance(0, 1.0);
    EXPECT_DOUBLE_EQ(
        realloc.recycleFromInstance(inst, Watts(1.0)).value(), 0.0);
}

TEST_F(ReallocTest, RecycleFromInstanceHonoursMaxSteps)
{
    PowerReallocator realloc(&budget, &cpufreq);
    const auto inst = addInstance(6, 1.0);
    const Watts got =
        realloc.recycleFromInstance(inst, Watts(100.0), /*maxSteps=*/2);
    EXPECT_EQ(cpufreq.getLevel(inst.coreId), 4);
    EXPECT_NEAR(got.value(), watts(6) - watts(4), 1e-9);
}

TEST_F(ReallocTest, RecycleVisitsFastestFirst)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, /*metric=*/0.1)); // fastest
    sorted.push_back(addInstance(6, /*metric=*/0.5));
    sorted.push_back(addInstance(6, /*metric=*/2.0)); // bottleneck
    // Need less than one donor can give: only the fastest is touched.
    const Watts got = realloc.recycle(Watts(0.5), sorted,
                                      sorted.back().instanceId);
    EXPECT_GE(got.value(), 0.5);
    EXPECT_LT(cpufreq.getLevel(sorted[0].coreId), 6);
    EXPECT_EQ(cpufreq.getLevel(sorted[1].coreId), 6);
    EXPECT_EQ(cpufreq.getLevel(sorted[2].coreId), 6);
}

TEST_F(ReallocTest, RecycleSpillsToNextDonor)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    sorted.push_back(addInstance(6, 0.5));
    sorted.push_back(addInstance(6, 2.0));
    // More than one donor's full range (1.2->... frees ~2.88 W each).
    const double perDonor = watts(6) - watts(0);
    const Watts need(perDonor + 1.0);
    const Watts got =
        realloc.recycle(need, sorted, sorted.back().instanceId);
    EXPECT_GE(got.value(), need.value());
    EXPECT_EQ(cpufreq.getLevel(sorted[0].coreId), 0); // fully drained
    EXPECT_LT(cpufreq.getLevel(sorted[1].coreId), 6); // partially
    EXPECT_EQ(cpufreq.getLevel(sorted[2].coreId), 6); // excluded
}

TEST_F(ReallocTest, RecycleNeverTouchesExcluded)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    sorted.push_back(addInstance(6, 2.0));
    const Watts got = realloc.recycle(Watts(1000.0), sorted,
                                      sorted.back().instanceId);
    EXPECT_EQ(cpufreq.getLevel(sorted[1].coreId), 6);
    EXPECT_NEAR(got.value(), watts(6) - watts(0), 1e-9);
}

TEST_F(ReallocTest, RecycleZeroOrNegativeNeedIsNoOp)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    EXPECT_DOUBLE_EQ(
        realloc.recycle(Watts(0.0), sorted, -1).value(), 0.0);
    EXPECT_DOUBLE_EQ(
        realloc.recycle(Watts(-1.0), sorted, -1).value(), 0.0);
    EXPECT_EQ(cpufreq.getLevel(sorted[0].coreId), 6);
}

TEST_F(ReallocTest, BudgetReflectsRecycledPower)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    sorted.push_back(addInstance(6, 2.0));
    const double before = budget.allocated().value();
    const Watts got =
        realloc.recycle(Watts(1.5), sorted, sorted.back().instanceId);
    EXPECT_NEAR(budget.allocated().value(), before - got.value(), 1e-9);
}

TEST_F(ReallocTest, SlowestFirstOrderReverses)
{
    PowerReallocator realloc(&budget, &cpufreq,
                             std::make_unique<SlowestFirstOrder>());
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    sorted.push_back(addInstance(6, 0.5));
    sorted.push_back(addInstance(6, 2.0));
    realloc.recycle(Watts(0.5), sorted, sorted.back().instanceId);
    // The *slowest non-excluded* donor (metric 0.5) is drained first.
    EXPECT_EQ(cpufreq.getLevel(sorted[0].coreId), 6);
    EXPECT_LT(cpufreq.getLevel(sorted[1].coreId), 6);
}

TEST_F(ReallocTest, ProportionalOrderSpreadsSteps)
{
    PowerReallocator realloc(&budget, &cpufreq,
                             std::make_unique<ProportionalOrder>());
    SortedSnapshots sorted;
    sorted.push_back(addInstance(6, 0.1));
    sorted.push_back(addInstance(6, 0.5));
    sorted.push_back(addInstance(6, 2.0));
    // One step of level 6->5 frees < 0.7 W, so one round is not enough
    // and both donors must contribute a step before anyone gives two.
    const double oneStep = watts(6) - watts(5);
    realloc.recycle(Watts(1.5 * oneStep), sorted,
                    sorted.back().instanceId);
    EXPECT_EQ(cpufreq.getLevel(sorted[0].coreId), 5);
    EXPECT_EQ(cpufreq.getLevel(sorted[1].coreId), 5);
}

TEST_F(ReallocTest, DefaultOrderIsFastestFirst)
{
    PowerReallocator realloc(&budget, &cpufreq);
    EXPECT_STREQ(realloc.orderPolicy().name(), "fastest-first");
}

TEST_F(ReallocTest, RecycleReturnsShortfallWhenAllFloored)
{
    PowerReallocator realloc(&budget, &cpufreq);
    SortedSnapshots sorted;
    sorted.push_back(addInstance(0, 0.1));
    sorted.push_back(addInstance(0, 2.0));
    const Watts got = realloc.recycle(Watts(5.0), sorted,
                                      sorted.back().instanceId);
    EXPECT_DOUBLE_EQ(got.value(), 0.0);
}

} // namespace
} // namespace pc
