/** @file Unit tests for the RAPL power-limit enforcer. */

#include <gtest/gtest.h>

#include "hal/power_limit.h"
#include "hal/msr.h"

#include "core/command_center.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

TEST(PowerLimitEncoding, RoundTrip)
{
    EXPECT_DOUBLE_EQ(
        msr::wattsFromPowerLimit(msr::powerLimitFromWatts(13.5)), 13.5);
    EXPECT_DOUBLE_EQ(
        msr::wattsFromPowerLimit(msr::powerLimitFromWatts(95.0)), 95.0);
    // 1/8 W quantization.
    EXPECT_DOUBLE_EQ(
        msr::wattsFromPowerLimit(msr::powerLimitFromWatts(13.56)),
        13.5);
}

class LimitTest : public testing::Test
{
  protected:
    LimitTest()
        : model(PowerModel::haswell()), chip(&sim, &model, 4),
          enforcer(&sim, &chip, SimTime::sec(1))
    {
    }

    /** Bring @p n cores online busy at @p level. */
    void
    runBusy(int n, int level)
    {
        for (int i = 0; i < n; ++i) {
            const auto id = chip.acquireCore(level);
            chip.core(*id).setBusy(true);
        }
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    PowerLimitEnforcer enforcer;
};

TEST_F(LimitTest, LimitRegisterReadback)
{
    enforcer.setLimit(Watts(20.0));
    EXPECT_DOUBLE_EQ(enforcer.limit().value(), 20.0);
    EXPECT_EQ(chip.msr().read(0, msr::MSR_PKG_POWER_LIMIT),
              msr::powerLimitFromWatts(20.0));
}

TEST_F(LimitTest, ThrottlesUntilUnderLimit)
{
    // 3 busy cores at 2.4 GHz draw ~29.5 W; cap them to 12 W.
    runBusy(3, 12);
    enforcer.setLimit(Watts(12.0));
    enforcer.start();
    sim.runUntil(SimTime::sec(60));
    RaplReader rapl(&chip);
    sim.runUntil(SimTime::sec(70));
    EXPECT_LE(rapl.windowPower().value(), 12.0);
    EXPECT_GT(enforcer.throttleEvents(), 0u);
    // All cores were throttled uniformly below the maximum.
    for (int i = 0; i < 3; ++i)
        EXPECT_LT(chip.core(i).level(), 12);
}

TEST_F(LimitTest, NoActionUnderLimit)
{
    runBusy(2, 0); // ~3.3 W
    enforcer.setLimit(Watts(30.0));
    enforcer.start();
    sim.runUntil(SimTime::sec(30));
    EXPECT_EQ(enforcer.throttleEvents(), 0u);
    EXPECT_EQ(chip.core(0).level(), 0);
}

TEST_F(LimitTest, NoActionWhenLimitUnprogrammed)
{
    runBusy(4, 12);
    enforcer.start();
    sim.runUntil(SimTime::sec(30));
    EXPECT_EQ(enforcer.throttleEvents(), 0u);
    EXPECT_EQ(chip.core(0).level(), 12);
}

TEST_F(LimitTest, RecoversWhenHeadroomReturns)
{
    runBusy(3, 12);
    enforcer.setLimit(Watts(12.0));
    enforcer.start();
    sim.runUntil(SimTime::sec(60));
    const int throttledLevel = chip.core(0).level();
    ASSERT_LT(throttledLevel, 12);
    ASSERT_GT(enforcer.throttleDepth(), 0);

    // Load disappears: idle power is far below the cap, so the
    // enforcer steps the cores back up.
    for (int i = 0; i < 3; ++i)
        chip.core(i).setBusy(false);
    sim.runUntil(SimTime::sec(120));
    EXPECT_GT(chip.core(0).level(), throttledLevel);
    EXPECT_EQ(enforcer.throttleDepth(), 0);
}

TEST_F(LimitTest, StopHaltsEnforcement)
{
    runBusy(3, 12);
    enforcer.setLimit(Watts(12.0));
    enforcer.start();
    sim.runUntil(SimTime::sec(5));
    enforcer.stop();
    const auto events = enforcer.throttleEvents();
    sim.runUntil(SimTime::sec(50));
    EXPECT_EQ(enforcer.throttleEvents(), events);
}

TEST(LimitTestIntegration, EnforcerSilentUnderPowerChiefBudget)
{
    // PowerChief's software budget keeps modelled power at or below
    // the cap, so a RAPL limit programmed at the same cap (plus the
    // idle-vs-active modelling slack) never has to throttle — the
    // §3 claim that the framework guards the budget by construction.
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 16);
    MessageBus bus(&sim);
    const WorkloadModel sirius = WorkloadModel::sirius();
    MultiStageApp app(&sim, &chip, &bus, "sirius",
                      sirius.layout(1, model.ladder().midLevel()));
    const SpeedupBook book =
        OfflineProfiler(30).profileWorkload(sirius, model, 1);
    PowerBudget budget(Watts(13.56), &model);
    ControlConfig cfg;
    cfg.adjustInterval = SimTime::sec(10);
    CommandCenter center(&sim, &bus, &chip, &app, &budget, &book, cfg,
                         std::make_unique<PowerChiefPolicy>());
    center.start();

    PowerLimitEnforcer enforcer(&sim, &chip, SimTime::sec(1));
    enforcer.setLimit(Watts(13.56));
    enforcer.start();

    LoadGenerator gen(&sim, &app, &sirius, LoadProfile::constant(0.8),
                      3, model.ladder().freqAt(0).value());
    gen.start(SimTime::sec(200));
    sim.runUntil(SimTime::sec(200));

    EXPECT_EQ(enforcer.throttleEvents(), 0u);
    EXPECT_GT(app.completed(), 50u);
}

TEST(LimitDeath, BadParametersAreFatal)
{
    Simulator sim;
    const PowerModel model = PowerModel::haswell();
    CmpChip chip(&sim, &model, 2);
    EXPECT_EXIT(PowerLimitEnforcer(&sim, &chip, SimTime::zero()),
                testing::ExitedWithCode(1), "period");
    PowerLimitEnforcer enforcer(&sim, &chip);
    EXPECT_EXIT(enforcer.setLimit(Watts(0.0)),
                testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace pc
