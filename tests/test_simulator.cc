/** @file Unit tests for the discrete-event simulator. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pc {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(SimTime::sec(3), [&]() { order.push_back(3); });
    sim.scheduleAt(SimTime::sec(1), [&]() { order.push_back(1); });
    sim.scheduleAt(SimTime::sec(2), [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime::sec(3));
}

TEST(Simulator, TiesBreakInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.scheduleAt(SimTime::sec(1), [&, i]() { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringDispatch)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(SimTime::msec(250), [&]() { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, SimTime::msec(250));
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(SimTime::sec(1), [&]() {
        sim.scheduleAfter(SimTime::sec(2), [&]() { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, SimTime::sec(3));
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    const EventId id =
        sim.scheduleAt(SimTime::sec(1), [&]() { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceFails)
{
    Simulator sim;
    const EventId id = sim.scheduleAt(SimTime::sec(1), []() {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireFails)
{
    Simulator sim;
    const EventId id = sim.scheduleAt(SimTime::sec(1), []() {});
    sim.run();
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdFails)
{
    Simulator sim;
    EXPECT_FALSE(sim.cancel(0));
    EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(SimTime::sec(1), [&]() { ++count; });
    sim.scheduleAt(SimTime::sec(5), [&]() { ++count; });
    sim.runUntil(SimTime::sec(2));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), SimTime::sec(2));
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents)
{
    Simulator sim;
    bool ran = false;
    sim.scheduleAt(SimTime::sec(2), [&]() { ran = true; });
    sim.runUntil(SimTime::sec(2));
    EXPECT_TRUE(ran);
}

TEST(Simulator, StepOneEventAtATime)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(SimTime::sec(1), [&]() { ++count; });
    sim.scheduleAt(SimTime::sec(2), [&]() { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchedCountsSkipCancelled)
{
    Simulator sim;
    sim.scheduleAt(SimTime::sec(1), []() {});
    const EventId id = sim.scheduleAt(SimTime::sec(2), []() {});
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(sim.dispatchedEvents(), 1u);
}

TEST(Simulator, PeriodicFiresRepeatedly)
{
    Simulator sim;
    int ticks = 0;
    sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1),
                         [&]() { ++ticks; });
    sim.runUntil(SimTime::sec(5));
    EXPECT_EQ(ticks, 5);
}

TEST(Simulator, PeriodicCancelStops)
{
    Simulator sim;
    int ticks = 0;
    const EventId handle = sim.schedulePeriodic(
        SimTime::sec(1), SimTime::sec(1), [&]() { ++ticks; });
    sim.runUntil(SimTime::sec(3));
    sim.cancelPeriodic(handle);
    sim.runUntil(SimTime::sec(10));
    EXPECT_EQ(ticks, 3);
}

TEST(Simulator, PeriodicCanCancelItself)
{
    Simulator sim;
    int ticks = 0;
    EventId handle = 0;
    handle = sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1),
                                  [&]() {
                                      if (++ticks == 2)
                                          sim.cancelPeriodic(handle);
                                  });
    sim.runUntil(SimTime::sec(10));
    EXPECT_EQ(ticks, 2);
}

TEST(Simulator, NestedSchedulingFromEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 10)
            sim.scheduleAfter(SimTime::msec(1), recurse);
    };
    sim.scheduleAt(SimTime::zero(), recurse);
    sim.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), SimTime::msec(9));
}

TEST(Simulator, CancelFromWithinOwnCallbackFails)
{
    // By the time a callback runs its event has fired; cancelling the
    // event's own id from inside it must report failure and must not
    // disturb the slot the id used to name.
    Simulator sim;
    EventId self = 0;
    bool cancelResult = true;
    self = sim.scheduleAt(SimTime::sec(1), [&]() {
        cancelResult = sim.cancel(self);
    });
    sim.run();
    EXPECT_FALSE(cancelResult);
}

TEST(Simulator, CancelOfFiredIdFailsAcrossSlotReuse)
{
    // Generation tags: after A fires, its pool slot is recycled by B.
    // A's handle must still cancel nothing — in particular not B.
    Simulator sim;
    bool aRan = false;
    bool bRan = false;
    const EventId a = sim.scheduleAt(SimTime::sec(1),
                                     [&aRan]() { aRan = true; });
    sim.run();
    EXPECT_TRUE(aRan);

    const EventId b = sim.scheduleAt(SimTime::sec(2),
                                     [&bRan]() { bRan = true; });
    EXPECT_NE(a, b); // same slot, different generation
    EXPECT_FALSE(sim.cancel(a));
    sim.run();
    EXPECT_TRUE(bRan);
}

TEST(Simulator, CancelOfCancelledIdFailsAcrossSlotReuse)
{
    Simulator sim;
    bool bRan = false;
    const EventId a = sim.scheduleAt(SimTime::sec(1), []() {});
    EXPECT_TRUE(sim.cancel(a));
    sim.scheduleAt(SimTime::sec(1), [&bRan]() { bRan = true; });
    EXPECT_FALSE(sim.cancel(a)); // stale generation, B unaffected
    sim.run();
    EXPECT_TRUE(bRan);
}

TEST(Simulator, RunUntilDeadlineLandingOnCancelledStub)
{
    // A cancelled stub exactly at the deadline must neither execute
    // nor stop the clock short: runUntil still lands on the deadline,
    // and live events beyond it stay pending.
    Simulator sim;
    bool ran = false;
    bool lateRan = false;
    const EventId id = sim.scheduleAt(SimTime::sec(2),
                                      [&ran]() { ran = true; });
    sim.scheduleAt(SimTime::sec(3), [&lateRan]() { lateRan = true; });
    sim.cancel(id);
    sim.runUntil(SimTime::sec(2));
    EXPECT_FALSE(ran);
    EXPECT_FALSE(lateRan);
    EXPECT_EQ(sim.now(), SimTime::sec(2));
    EXPECT_EQ(sim.liveEvents(), 1u);
    sim.run();
    EXPECT_TRUE(lateRan);
}

TEST(Simulator, PendingEventsAfterCompaction)
{
    // Cancel-heavy churn: once stubs dominate a large-enough heap the
    // simulator compacts, so pendingEvents() tracks live work instead
    // of accumulated tombstones.
    Simulator sim;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i)
        ids.push_back(sim.scheduleAt(SimTime::usec(i + 1), []() {}));
    EXPECT_EQ(sim.pendingEvents(), 200u);

    for (int i = 0; i < 160; ++i)
        sim.cancel(ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(sim.liveEvents(), 40u);
    // Compaction kicked in while cancelling: far fewer than the 160
    // stubs can remain, and the count never exceeds 2x live events.
    EXPECT_LT(sim.pendingEvents(), 81u);

    int ran = 0;
    while (sim.step())
        ++ran;
    EXPECT_EQ(ran, 40);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, StepSkipsStubsWithoutAdvancingClock)
{
    Simulator sim;
    const EventId id = sim.scheduleAt(SimTime::sec(1), []() {});
    sim.cancel(id);
    EXPECT_FALSE(sim.step()); // only a stub remains: no live event
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, PeriodicCallbackCancellingOwnTaskStopsCleanly)
{
    // Regression for the single-lookup tick path: cancelling the
    // running task from inside its own callback must stop future ticks
    // without touching the map entry mid-iteration.
    Simulator sim;
    int ticks = 0;
    EventId handle = 0;
    handle = sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1),
                                  [&]() {
                                      ++ticks;
                                      sim.cancelPeriodic(handle);
                                  });
    sim.runUntil(SimTime::sec(10));
    EXPECT_EQ(ticks, 1);
}

TEST(Simulator, PeriodicReschedulingAnotherPeriodicFromInsideTick)
{
    // A tick that starts a different periodic task: the insert may
    // rehash the task table while the running tick still holds a
    // reference into it.
    Simulator sim;
    int aTicks = 0;
    int bTicks = 0;
    EventId a = 0;
    a = sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1), [&]() {
        if (++aTicks == 2) {
            sim.schedulePeriodic(sim.now() + SimTime::sec(1),
                                 SimTime::sec(1), [&]() { ++bTicks; });
            sim.cancelPeriodic(a);
        }
    });
    sim.runUntil(SimTime::sec(6));
    EXPECT_EQ(aTicks, 2);
    EXPECT_EQ(bTicks, 4); // B fires at t=3,4,5,6
}

TEST(Simulator, PeriodicCancellingAnotherPeriodicFromInsideTick)
{
    Simulator sim;
    int aTicks = 0;
    int bTicks = 0;
    const EventId b = sim.schedulePeriodic(
        SimTime::sec(1), SimTime::sec(1), [&bTicks]() { ++bTicks; });
    sim.schedulePeriodic(SimTime::msec(2500), SimTime::sec(10), [&]() {
        ++aTicks;
        sim.cancelPeriodic(b);
    });
    sim.runUntil(SimTime::sec(8));
    EXPECT_EQ(aTicks, 1);
    EXPECT_EQ(bTicks, 2); // t=1s and t=2s only; cancelled at t=2.5s
}

TEST(Simulator, ManyPeriodicsInterleaved)
{
    Simulator sim;
    int total = 0;
    for (int i = 0; i < 16; ++i)
        sim.schedulePeriodic(SimTime::msec(100 + i), SimTime::msec(100),
                             [&total]() { ++total; });
    // Task i fires at 100+i, 200+i, ... ms; each gets 10 ticks in
    // [0, 1050] ms.
    sim.runUntil(SimTime::msec(1050));
    EXPECT_EQ(total, 16 * 10);
}

TEST(Simulator, InvalidEventSentinelNeverIssued)
{
    Simulator sim;
    // The sentinel is inert: cancelling it is a no-op that reports
    // failure rather than tearing down a real event.
    EXPECT_FALSE(sim.cancel(Simulator::kInvalidEvent));

    // No id handed out by the scheduler may ever equal the sentinel,
    // even across heavy slot reuse (cancel + reschedule recycles
    // pooled slots and bumps generations).
    std::vector<EventId> ids;
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 64; ++i) {
            ids.push_back(sim.scheduleAfter(
                SimTime::usec(1 + i), []() {}));
        }
        for (std::size_t i = 0; i < ids.size(); i += 2)
            sim.cancel(ids[i]);
        for (EventId id : ids)
            EXPECT_NE(id, Simulator::kInvalidEvent);
        ids.clear();
        sim.run();
    }
    EXPECT_FALSE(sim.cancel(Simulator::kInvalidEvent));
}

TEST(SimulatorDeath, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.scheduleAt(SimTime::sec(5), []() {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(SimTime::sec(1), []() {}), "past");
}

TEST(SimulatorDeath, NonPositivePeriodPanics)
{
    Simulator sim;
    EXPECT_DEATH(
        sim.schedulePeriodic(SimTime::zero(), SimTime::zero(), []() {}),
        "period");
}

} // namespace
} // namespace pc
