/** @file Unit tests for the discrete-event simulator. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pc {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(SimTime::sec(3), [&]() { order.push_back(3); });
    sim.scheduleAt(SimTime::sec(1), [&]() { order.push_back(1); });
    sim.scheduleAt(SimTime::sec(2), [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime::sec(3));
}

TEST(Simulator, TiesBreakInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.scheduleAt(SimTime::sec(1), [&, i]() { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringDispatch)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(SimTime::msec(250), [&]() { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, SimTime::msec(250));
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(SimTime::sec(1), [&]() {
        sim.scheduleAfter(SimTime::sec(2), [&]() { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, SimTime::sec(3));
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    const EventId id =
        sim.scheduleAt(SimTime::sec(1), [&]() { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceFails)
{
    Simulator sim;
    const EventId id = sim.scheduleAt(SimTime::sec(1), []() {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireFails)
{
    Simulator sim;
    const EventId id = sim.scheduleAt(SimTime::sec(1), []() {});
    sim.run();
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdFails)
{
    Simulator sim;
    EXPECT_FALSE(sim.cancel(0));
    EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(SimTime::sec(1), [&]() { ++count; });
    sim.scheduleAt(SimTime::sec(5), [&]() { ++count; });
    sim.runUntil(SimTime::sec(2));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), SimTime::sec(2));
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents)
{
    Simulator sim;
    bool ran = false;
    sim.scheduleAt(SimTime::sec(2), [&]() { ran = true; });
    sim.runUntil(SimTime::sec(2));
    EXPECT_TRUE(ran);
}

TEST(Simulator, StepOneEventAtATime)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(SimTime::sec(1), [&]() { ++count; });
    sim.scheduleAt(SimTime::sec(2), [&]() { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchedCountsSkipCancelled)
{
    Simulator sim;
    sim.scheduleAt(SimTime::sec(1), []() {});
    const EventId id = sim.scheduleAt(SimTime::sec(2), []() {});
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(sim.dispatchedEvents(), 1u);
}

TEST(Simulator, PeriodicFiresRepeatedly)
{
    Simulator sim;
    int ticks = 0;
    sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1),
                         [&]() { ++ticks; });
    sim.runUntil(SimTime::sec(5));
    EXPECT_EQ(ticks, 5);
}

TEST(Simulator, PeriodicCancelStops)
{
    Simulator sim;
    int ticks = 0;
    const EventId handle = sim.schedulePeriodic(
        SimTime::sec(1), SimTime::sec(1), [&]() { ++ticks; });
    sim.runUntil(SimTime::sec(3));
    sim.cancelPeriodic(handle);
    sim.runUntil(SimTime::sec(10));
    EXPECT_EQ(ticks, 3);
}

TEST(Simulator, PeriodicCanCancelItself)
{
    Simulator sim;
    int ticks = 0;
    EventId handle = 0;
    handle = sim.schedulePeriodic(SimTime::sec(1), SimTime::sec(1),
                                  [&]() {
                                      if (++ticks == 2)
                                          sim.cancelPeriodic(handle);
                                  });
    sim.runUntil(SimTime::sec(10));
    EXPECT_EQ(ticks, 2);
}

TEST(Simulator, NestedSchedulingFromEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 10)
            sim.scheduleAfter(SimTime::msec(1), recurse);
    };
    sim.scheduleAt(SimTime::zero(), recurse);
    sim.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), SimTime::msec(9));
}

TEST(SimulatorDeath, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.scheduleAt(SimTime::sec(5), []() {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(SimTime::sec(1), []() {}), "past");
}

TEST(SimulatorDeath, NonPositivePeriodPanics)
{
    Simulator sim;
    EXPECT_DEATH(
        sim.schedulePeriodic(SimTime::zero(), SimTime::zero(), []() {}),
        "period");
}

} // namespace
} // namespace pc
