/** @file Unit tests for the CSV artifact writer. */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/artifacts.h"

namespace pc {
namespace {

namespace fs = std::filesystem;

class ArtifactsTest : public testing::Test
{
  protected:
    ArtifactsTest()
        : dir(fs::temp_directory_path() /
              ("pc-artifacts-" +
               std::to_string(::getpid()) + "-" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name()))
    {
    }

    ~ArtifactsTest() override
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    static RunResult
    sampleResult()
    {
        RunResult r;
        r.scenario = "sirius/high/PowerChief";
        r.submitted = 100;
        r.completed = 90;
        r.avgLatencySec = 1.5;
        r.p99LatencySec = 4.0;
        r.maxLatencySec = 9.0;
        r.avgPowerWatts = 12.3;
        r.energyJoules = 1234.5;
        r.latencySeries.append(SimTime::sec(1), 1.0);
        r.powerSeries.append(SimTime::sec(1), 12.0);
        r.stageInstanceCounts.emplace_back("instances");
        r.stageInstanceCounts[0].append(SimTime::sec(1), 3);
        TimeSeries freq("QA_1");
        freq.append(SimTime::sec(1), 1.8);
        r.instanceFrequencyGHz.emplace("QA_1", std::move(freq));
        return r;
    }

    static std::string
    slurp(const fs::path &p)
    {
        std::ifstream in(p);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    fs::path dir;
};

TEST_F(ArtifactsTest, SanitizeReplacesHostileCharacters)
{
    EXPECT_EQ(ArtifactWriter::sanitize("sirius/high/PowerChief"),
              "sirius_high_PowerChief");
    EXPECT_EQ(ArtifactWriter::sanitize("a b.c-d_e"), "a_b.c-d_e");
    EXPECT_EQ(ArtifactWriter::sanitize(""), "run");
}

TEST_F(ArtifactsTest, CreatesRootDirectory)
{
    ArtifactWriter writer(dir.string());
    EXPECT_TRUE(fs::exists(dir));
    EXPECT_EQ(writer.root(), dir.string());
}

TEST_F(ArtifactsTest, WriteRunEmitsAllFiles)
{
    ArtifactWriter writer(dir.string());
    const std::string runDir = writer.writeRun(sampleResult());
    EXPECT_TRUE(fs::exists(fs::path(runDir) / "summary.csv"));
    EXPECT_TRUE(fs::exists(fs::path(runDir) / "latency.csv"));
    EXPECT_TRUE(fs::exists(fs::path(runDir) / "power.csv"));
    EXPECT_TRUE(
        fs::exists(fs::path(runDir) / "instances_stage0.csv"));
    EXPECT_TRUE(fs::exists(fs::path(runDir) / "freq_QA_1.csv"));
}

TEST_F(ArtifactsTest, SummaryContentIsCorrect)
{
    ArtifactWriter writer(dir.string());
    const std::string runDir = writer.writeRun(sampleResult());
    const std::string content =
        slurp(fs::path(runDir) / "summary.csv");
    EXPECT_NE(content.find("sirius/high/PowerChief"),
              std::string::npos);
    EXPECT_NE(content.find("avg_latency_s"), std::string::npos);
    EXPECT_NE(content.find("1.5"), std::string::npos);
}

TEST_F(ArtifactsTest, SeriesFilesHaveHeaderAndRows)
{
    ArtifactWriter writer(dir.string());
    const std::string runDir = writer.writeRun(sampleResult());
    const std::string content =
        slurp(fs::path(runDir) / "power.csv");
    EXPECT_EQ(content, "time_sec,value\n1,12\n");
}

TEST_F(ArtifactsTest, EmptySeriesAreOmitted)
{
    ArtifactWriter writer(dir.string());
    RunResult bare;
    bare.scenario = "bare";
    const std::string runDir = writer.writeRun(bare);
    EXPECT_TRUE(fs::exists(fs::path(runDir) / "summary.csv"));
    EXPECT_FALSE(fs::exists(fs::path(runDir) / "latency.csv"));
    EXPECT_FALSE(fs::exists(fs::path(runDir) / "power.csv"));
}

TEST_F(ArtifactsTest, CrossRunSummary)
{
    ArtifactWriter writer(dir.string());
    auto a = sampleResult();
    auto b = sampleResult();
    b.scenario = "other";
    writer.writeSummary({a, b});
    const std::string content = slurp(dir / "summary.csv");
    EXPECT_NE(content.find("sirius/high/PowerChief"),
              std::string::npos);
    EXPECT_NE(content.find("other"), std::string::npos);
    // Header + two rows.
    EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 3);
}

} // namespace
} // namespace pc
