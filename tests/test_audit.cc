/**
 * @file
 * Tests for the decision-audit log and the tail-attribution collector:
 * record stamping, flip detection, actuation marking, prediction
 * scoring, deterministic dumps, tail-cut math, the JSON codec, and the
 * pure-observer guarantee end to end.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json.h"
#include "exp/result_cache.h"
#include "exp/runner.h"
#include "obs/audit.h"
#include "obs/telemetry.h"
#include "stats/attribution.h"

namespace pc {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

JsonValue
parsed(const std::string &text)
{
    const JsonParseResult result = parseJson(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return result.ok() ? *result.value : JsonValue();
}

AuditRecord
selectOf(int stage, AuditBoostKind chosen, double tInst, double tFreq)
{
    AuditRecord rec;
    rec.kind = AuditDecisionKind::Select;
    rec.chosen = chosen;
    rec.stageIndex = stage;
    rec.targetInstance = 100 + stage;
    rec.tInstSec = tInst;
    rec.tFreqSec = tFreq;
    AuditCandidate cand;
    cand.instanceId = 100 + stage;
    cand.stageIndex = stage;
    cand.queueLength = 4;
    cand.avgQueuingSec = 0.3;
    cand.avgServingSec = 0.1;
    cand.metric = 1.3;
    rec.candidates.push_back(cand);
    return rec;
}

// ----------------------------------------------------------- AuditLog

TEST(AuditLog, DisabledLogIgnoresEverything)
{
    AuditLog log(false);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1.0, 2.0));
    log.recordRecycle(1.0, 0.5, 3);
    log.recordWithdraw(7, 0, 0.1, 0.2);
    log.noteActuation(AuditBoostKind::Frequency);
    log.scorePending(SimTime::sec(50), {1.0});
    EXPECT_FALSE(log.enabled());
    EXPECT_TRUE(log.records().empty());
    EXPECT_EQ(log.flips(), 0u);
}

TEST(AuditLog, RecordsCarryIntervalStampsAndContiguousSeq)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1.0, 2.0));
    log.recordRecycle(2.0, 1.5, 4);
    log.beginInterval(SimTime::sec(50), 2);
    log.recordWithdraw(9, 1, 0.05, 0.2);

    ASSERT_EQ(log.records().size(), 3u);
    EXPECT_EQ(log.records()[0].seq, 0u);
    EXPECT_EQ(log.records()[1].seq, 1u);
    EXPECT_EQ(log.records()[2].seq, 2u);
    EXPECT_EQ(log.records()[0].interval, 1u);
    EXPECT_EQ(log.records()[1].interval, 1u);
    EXPECT_EQ(log.records()[2].interval, 2u);
    EXPECT_EQ(log.records()[2].t, SimTime::sec(50));
    // Raw instance ids are remapped densely in first-reference order:
    // the select's instance 100 became 1, the withdrawn 9 becomes 2.
    EXPECT_EQ(log.records()[2].targetInstance, 2);
    EXPECT_EQ(log.records()[0].targetInstance, 1);
    EXPECT_EQ(log.records()[0].candidates[0].instanceId, 1);
    EXPECT_DOUBLE_EQ(log.records()[1].neededWatts, 2.0);
    EXPECT_DOUBLE_EQ(log.records()[1].recycledWatts, 1.5);
    EXPECT_EQ(log.records()[1].donorSteps, 4u);
}

TEST(AuditLog, FlipCountsKindChangesPerStage)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1, 2));
    EXPECT_EQ(log.flips(), 0u); // first choice is not a flip

    log.beginInterval(SimTime::sec(50), 2);
    log.recordSelect(selectOf(0, AuditBoostKind::Instance, 1, 2));
    EXPECT_EQ(log.flips(), 1u);

    // A None decision neither flips nor resets the stage's history.
    log.beginInterval(SimTime::sec(75), 3);
    log.recordSelect(selectOf(0, AuditBoostKind::None, 1, 2));
    EXPECT_EQ(log.flips(), 1u);

    log.beginInterval(SimTime::sec(100), 4);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1, 2));
    EXPECT_EQ(log.flips(), 2u);

    // A different stage keeps its own history.
    log.recordSelect(selectOf(1, AuditBoostKind::Instance, 1, 2));
    EXPECT_EQ(log.flips(), 2u);
}

TEST(AuditLog, ActuationMarksMostRecentUnactuatedMatch)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1, 2));
    log.recordSelect(selectOf(1, AuditBoostKind::Frequency, 1, 2));

    log.noteActuation(AuditBoostKind::Frequency);
    EXPECT_FALSE(log.records()[0].actuated);
    EXPECT_TRUE(log.records()[1].actuated);
    log.noteActuation(AuditBoostKind::Frequency);
    EXPECT_TRUE(log.records()[0].actuated);
    // Nothing left to mark: a stray actuation is a no-op.
    log.noteActuation(AuditBoostKind::Instance);
}

TEST(AuditLog, ScoringComputesMapeAgainstRealizedDelay)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Instance, 2.0, 3.0));
    log.recordSelect(selectOf(1, AuditBoostKind::Frequency, 2.0, 1.0));

    // Scoring happens at the *next* interval against realized delays.
    log.beginInterval(SimTime::sec(50), 2);
    log.scorePending(SimTime::sec(50), {1.6, 2.0});

    const AuditRecord &inst = log.records()[0];
    ASSERT_TRUE(inst.scored);
    EXPECT_DOUBLE_EQ(inst.predictedSec, 2.0); // Eq. 2 for Instance
    EXPECT_DOUBLE_EQ(inst.realizedSec, 1.6);
    EXPECT_DOUBLE_EQ(inst.absPctErr, 25.0);

    const AuditRecord &freq = log.records()[1];
    ASSERT_TRUE(freq.scored);
    EXPECT_DOUBLE_EQ(freq.predictedSec, 1.0); // Eq. 3 for Frequency
    EXPECT_DOUBLE_EQ(freq.absPctErr, 50.0);

    EXPECT_DOUBLE_EQ(log.mapePct(AuditBoostKind::Instance), 25.0);
    EXPECT_DOUBLE_EQ(log.mapePct(AuditBoostKind::Frequency), 50.0);
    EXPECT_DOUBLE_EQ(log.mapePct(), 37.5);
}

TEST(AuditLog, ScoringRetriesUntilDelayMaterializes)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Instance, 2.0, 3.0));

    // No realized delay yet: the prediction stays pending.
    log.scorePending(SimTime::sec(50), {0.0});
    EXPECT_FALSE(log.records()[0].scored);
    EXPECT_DOUBLE_EQ(log.mapePct(), 0.0);

    log.scorePending(SimTime::sec(75), {2.0});
    ASSERT_TRUE(log.records()[0].scored);
    EXPECT_EQ(log.records()[0].scoredAt, SimTime::sec(75));
    EXPECT_DOUBLE_EQ(log.mapePct(), 0.0); // perfect prediction
}

TEST(AuditLog, JsonSummaryMatchesRecords)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordSelect(selectOf(0, AuditBoostKind::Frequency, 1.0, 2.0));
    log.recordRecycle(2.0, 2.0, 5);
    log.noteActuation(AuditBoostKind::Frequency);
    log.beginInterval(SimTime::sec(50), 2);
    log.recordSelect(selectOf(0, AuditBoostKind::Instance, 4.0, 5.0));
    log.recordWithdraw(3, 1, 0.1, 0.2);
    log.scorePending(SimTime::sec(50), {2.5});

    const JsonValue root = parsed(log.toJson().dump());
    const JsonValue *records = root.find("records");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->asArray().size(), 4u);

    const JsonValue *summary = root.find("summary");
    ASSERT_NE(summary, nullptr);
    const JsonValue *decisions = summary->find("decisions");
    ASSERT_NE(decisions, nullptr);
    EXPECT_DOUBLE_EQ(decisions->numberOr("select", -1), 2.0);
    EXPECT_DOUBLE_EQ(decisions->numberOr("recycle", -1), 1.0);
    EXPECT_DOUBLE_EQ(decisions->numberOr("withdraw", -1), 1.0);

    const JsonValue *select = summary->find("select");
    ASSERT_NE(select, nullptr);
    EXPECT_DOUBLE_EQ(select->numberOr("actuated", -1), 1.0);
    EXPECT_DOUBLE_EQ(select->numberOr("flips", -1), 1.0);
    EXPECT_DOUBLE_EQ(select->numberOr("frequency", -1), 1.0);
    EXPECT_DOUBLE_EQ(select->numberOr("instance", -1), 1.0);

    const JsonValue *overall =
        summary->find("prediction")->find("overall");
    ASSERT_NE(overall, nullptr);
    EXPECT_DOUBLE_EQ(overall->numberOr("scored", -1), 1.0);

    // The scored record carries the score sub-object.
    const JsonValue &first = records->asArray()[0];
    const JsonValue *score = first.find("score");
    ASSERT_NE(score, nullptr);
    EXPECT_DOUBLE_EQ(score->numberOr("predicted_s", -1), 2.0);
    EXPECT_DOUBLE_EQ(score->numberOr("realized_s", -1), 2.5);
}

TEST(AuditLog, RpcRetryAndStaleSkipRecordsRoundTrip)
{
    AuditLog log(true);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordRpcRetry(42, 2, 0.004);
    log.recordStaleSkip(9, 1, 75.0, 60.0);

    ASSERT_EQ(log.records().size(), 2u);
    const AuditRecord &retry = log.records()[0];
    EXPECT_EQ(retry.kind, AuditDecisionKind::RpcRetry);
    EXPECT_EQ(retry.callId, 42u);
    EXPECT_EQ(retry.attempt, 2);
    EXPECT_DOUBLE_EQ(retry.backoffSec, 0.004);

    const AuditRecord &stale = log.records()[1];
    EXPECT_EQ(stale.kind, AuditDecisionKind::StaleSkip);
    EXPECT_EQ(stale.targetInstance, 1); // densely remapped id
    EXPECT_EQ(stale.stageIndex, 1);
    EXPECT_DOUBLE_EQ(stale.ageSec, 75.0);
    EXPECT_DOUBLE_EQ(stale.staleWindowSec, 60.0);

    const JsonValue root = parsed(log.toJson().dump());
    const JsonValue *records = root.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->asArray().size(), 2u);

    const JsonValue &retryJson = records->asArray()[0];
    EXPECT_EQ(retryJson.stringOr("kind", ""), "rpc_retry");
    EXPECT_DOUBLE_EQ(retryJson.numberOr("call_id", -1), 42.0);
    EXPECT_DOUBLE_EQ(retryJson.numberOr("attempt", -1), 2.0);
    EXPECT_DOUBLE_EQ(retryJson.numberOr("backoff_s", -1), 0.004);

    const JsonValue &staleJson = records->asArray()[1];
    EXPECT_EQ(staleJson.stringOr("kind", ""), "stale_skip");
    EXPECT_DOUBLE_EQ(staleJson.numberOr("target", -1), 1.0);
    EXPECT_DOUBLE_EQ(staleJson.numberOr("stage", -1), 1.0);
    EXPECT_DOUBLE_EQ(staleJson.numberOr("age_s", -1), 75.0);
    EXPECT_DOUBLE_EQ(staleJson.numberOr("stale_window_s", -1), 60.0);

    const JsonValue *decisions =
        root.find("summary")->find("decisions");
    ASSERT_NE(decisions, nullptr);
    EXPECT_DOUBLE_EQ(decisions->numberOr("rpc_retry", -1), 1.0);
    EXPECT_DOUBLE_EQ(decisions->numberOr("stale_skip", -1), 1.0);
    EXPECT_DOUBLE_EQ(decisions->numberOr("select", -1), 0.0);
}

TEST(AuditLog, DisabledLogIgnoresRobustnessRecords)
{
    AuditLog log(false);
    log.beginInterval(SimTime::sec(25), 1);
    log.recordRpcRetry(1, 2, 0.001);
    log.recordStaleSkip(3, 0, 10.0, 5.0);
    EXPECT_TRUE(log.records().empty());
}

TEST(AuditLog, IdenticalOperationsProduceIdenticalDumps)
{
    auto populate = [](AuditLog &log) {
        log.beginInterval(SimTime::sec(25), 1);
        log.recordSelect(selectOf(0, AuditBoostKind::Instance, 2, 3));
        log.recordRecycle(1.0, 0.5, 2);
        log.beginInterval(SimTime::sec(50), 2);
        log.scorePending(SimTime::sec(50), {1.7});
        log.recordWithdraw(5, 0, 0.15, 0.2);
    };
    AuditLog first(true), second(true);
    populate(first);
    populate(second);

    std::ostringstream a, b;
    first.writeJson(a);
    second.writeJson(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(a.str().back(), '\n');
}

// ------------------------------------------------ TailAttribution math

TEST(TailAttribution, EmptyCollectorReportsNoCuts)
{
    TailAttributionCollector collector(2);
    const TailAttributionReport report = collector.report();
    EXPECT_TRUE(report.enabled);
    EXPECT_EQ(report.queries, 0u);
    EXPECT_TRUE(report.cuts.empty());
}

TEST(TailAttribution, TailCutMeansMatchHandComputation)
{
    TailAttributionCollector collector(2);
    for (int i = 1; i <= 100; ++i) {
        const double e2e = static_cast<double>(i);
        collector.addQuery(e2e, {{0.6 * e2e, 0.4 * e2e}, {0.0, 0.0}});
    }
    const TailAttributionReport report = collector.report();
    EXPECT_EQ(report.queries, 100u);
    ASSERT_EQ(report.cuts.size(), 2u);

    const TailCut &p95 = report.cuts[0];
    EXPECT_DOUBLE_EQ(p95.q, 0.95);
    EXPECT_EQ(p95.tailCount, 5u); // ceil(0.05 * 100)
    EXPECT_DOUBLE_EQ(p95.thresholdSec, 96.0);
    EXPECT_DOUBLE_EQ(p95.meanTailSec, 98.0);
    ASSERT_EQ(p95.stages.size(), 2u);
    EXPECT_DOUBLE_EQ(p95.stages[0].queuingSec, 0.6 * 98.0);
    EXPECT_DOUBLE_EQ(p95.stages[0].servingSec, 0.4 * 98.0);
    EXPECT_DOUBLE_EQ(p95.stages[1].queuingSec, 0.0);
    EXPECT_FALSE(p95.truncated);

    const TailCut &p99 = report.cuts[1];
    EXPECT_EQ(p99.tailCount, 1u);
    EXPECT_DOUBLE_EQ(p99.thresholdSec, 100.0);
    EXPECT_DOUBLE_EQ(p99.meanTailSec, 100.0);
}

TEST(TailAttribution, BoundedRetentionFlagsTruncation)
{
    TailAttributionCollector collector(1, /*capacity=*/2);
    for (int i = 1; i <= 1000; ++i)
        collector.addQuery(static_cast<double>(i),
                           {{0.0, static_cast<double>(i)}});
    const TailAttributionReport report = collector.report();
    ASSERT_EQ(report.cuts.size(), 2u);
    // p95 wants 50 retained queries but only 2 survive the cap.
    EXPECT_TRUE(report.cuts[0].truncated);
    EXPECT_EQ(report.cuts[0].tailCount, 2u);
    EXPECT_DOUBLE_EQ(report.cuts[0].meanTailSec, 999.5);
}

TEST(TailAttributionDeath, SpanCountMustMatchStages)
{
    TailAttributionCollector collector(2);
    EXPECT_DEATH(collector.addQuery(1.0, {{0.5, 0.5}}), "stage");
}

// ------------------------------------------------- end-to-end + codec

Scenario
smallScenario(const std::string &name, std::uint64_t seed)
{
    Scenario sc = Scenario::mitigation(WorkloadModel::sirius(),
                                       LoadLevel::High,
                                       PolicyKind::PowerChief, seed);
    sc.duration = SimTime::sec(120);
    sc.name = name;
    return sc;
}

TEST(AuditEndToEnd, AuditedRunIsPureObserverWithScoredRecords)
{
    const std::string dir = testing::TempDir();
    const Scenario sc = smallScenario("audit/e2e", 11);

    const ExperimentRunner runner;
    const RunResult bare = runner.run(sc);

    TelemetryConfig cfg;
    cfg.auditOut = dir + "audit_e2e.json";
    const RunResult observed = runner.run(sc, &cfg);

    // Auditing must not perturb the simulation at all.
    EXPECT_EQ(runResultToJson(bare).dump(),
              runResultToJson(observed).dump());

    const JsonValue root = parsed(slurp(cfg.auditOut));
    const JsonValue *records = root.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_FALSE(records->asArray().empty());

    std::size_t selects = 0, scored = 0;
    for (const JsonValue &rec : records->asArray()) {
        if (rec.stringOr("kind", "") != "select")
            continue;
        ++selects;
        // Every select explains itself with the Eq. 2/3 inputs.
        ASSERT_NE(rec.find("t_inst_s"), nullptr);
        ASSERT_NE(rec.find("t_freq_s"), nullptr);
        ASSERT_NE(rec.find("alpha_lh"), nullptr);
        ASSERT_NE(rec.find("candidates"), nullptr);
        EXPECT_FALSE(rec.find("candidates")->asArray().empty());
        if (rec.find("score") != nullptr) {
            ++scored;
            EXPECT_GT(rec.find("score")->numberOr("realized_s", 0.0),
                      0.0);
        }
    }
    EXPECT_GT(selects, 0u);
    EXPECT_GT(scored, 0u);
}

TEST(AuditEndToEnd, AttributionCollectsAndRoundTrips)
{
    const Scenario sc = smallScenario("audit/attr", 13);

    const RunResult bare = ExperimentRunner().run(sc);
    const RunResult attributed =
        ExperimentRunner(false, SimTime::sec(5), true).run(sc);

    // The collector observes completions without changing them.
    EXPECT_DOUBLE_EQ(attributed.avgLatencySec, bare.avgLatencySec);
    EXPECT_DOUBLE_EQ(attributed.p99LatencySec, bare.p99LatencySec);

    const TailAttributionReport &report = attributed.tailAttribution;
    ASSERT_TRUE(report.enabled);
    // The collector sees the same population as the latency
    // percentiles: completions whose arrival is past the warmup.
    EXPECT_GT(report.queries, 0u);
    EXPECT_LT(report.queries, attributed.completed);
    ASSERT_EQ(report.cuts.size(), 2u);
    for (const TailCut &cut : report.cuts) {
        // Stage queue+serve spans tile the end-to-end latency, so the
        // per-stage means of the tail sum back to the tail mean.
        double sum = 0.0;
        for (const StageSpan &stage : cut.stages)
            sum += stage.queuingSec + stage.servingSec;
        EXPECT_NEAR(sum, cut.meanTailSec, 1e-9 * cut.meanTailSec);
        EXPECT_GE(cut.meanTailSec, cut.thresholdSec);
    }

    // The sweep-cache codec round-trips the report byte-exactly.
    const std::string dumped = runResultToJson(attributed).dump();
    const JsonValue doc = parsed(dumped);
    const std::optional<RunResult> decoded = runResultFromJson(doc);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(runResultToJson(*decoded).dump(), dumped);
}

} // namespace
} // namespace pc
