/** @file Unit tests for the deterministic Rng wrapper. */

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pc {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform(0, 1) == b.uniform(0, 1))
            ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount)
{
    // A fork taken at the same point yields the same child stream.
    Rng a(7);
    Rng childA = a.fork();
    Rng b(7);
    Rng childB = b.fork();
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(childA.uniform(0, 1), childB.uniform(0, 1));
}

TEST(Rng, UniformRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(5);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto x = rng.uniformInt(0, 3);
        EXPECT_GE(x, 0);
        EXPECT_LE(x, 3);
        sawLo |= (x == 0);
        sawHi |= (x == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        sum += rng.exponential(0.5);
    EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, LognormalMeanAndCv)
{
    Rng rng(11);
    constexpr int kN = 50000;
    double sum = 0;
    double sumSq = 0;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.lognormal(2.0, 0.5);
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / kN;
    const double var = sumSq / kN - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.05);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.1, 2.0), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    constexpr int kN = 20000;
    double sum = 0;
    for (int i = 0; i < kN; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(19);
    int heads = 0;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; ++i)
        heads += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.03);
}

} // namespace
} // namespace pc
