/**
 * @file
 * Cross-module integration and system-invariant tests: full PowerChief
 * runs whose global properties (budget cap, query conservation, hop
 * completeness, energy accounting, paper-shape orderings) must hold.
 */

#include <gtest/gtest.h>

#include "core/command_center.h"
#include "exp/runner.h"
#include "hal/rapl.h"
#include "workloads/loadgen.h"
#include "workloads/profiler.h"

namespace pc {
namespace {

/** Full system rig with hooks into every layer. */
class IntegrationRig
{
  public:
    IntegrationRig(PolicyKind kind, double qps, std::uint64_t seed,
                   Watts cap = Watts(13.56))
        : model(PowerModel::haswell()), chip(&sim, &model, 16),
          bus(&sim), workload(WorkloadModel::sirius()),
          app(&sim, &chip, &bus, "sirius",
              workload.layout(1, model.ladder().midLevel())),
          book(OfflineProfiler(50).profileWorkload(workload, model,
                                                   seed)),
          budget(cap, &model)
    {
        ControlConfig cfg;
        cfg.adjustInterval = SimTime::sec(10);
        cfg.withdrawInterval = SimTime::sec(40);
        cfg.enableWithdraw = (kind == PolicyKind::PowerChief);
        std::unique_ptr<ControlPolicy> policy;
        switch (kind) {
          case PolicyKind::FreqBoost:
            policy = std::make_unique<FreqBoostPolicy>();
            break;
          case PolicyKind::InstBoost:
            policy = std::make_unique<InstBoostPolicy>();
            break;
          case PolicyKind::PowerChief:
            policy = std::make_unique<PowerChiefPolicy>();
            break;
          default:
            policy = std::make_unique<StageAgnosticPolicy>();
        }
        center = std::make_unique<CommandCenter>(
            &sim, &bus, &chip, &app, &budget, &book, cfg,
            std::move(policy));
        center->start();
        gen = std::make_unique<LoadGenerator>(
            &sim, &app, &workload, LoadProfile::constant(qps), seed,
            model.ladder().freqAt(0).value());
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    MessageBus bus;
    WorkloadModel workload;
    MultiStageApp app;
    SpeedupBook book;
    PowerBudget budget;
    std::unique_ptr<CommandCenter> center;
    std::unique_ptr<LoadGenerator> gen;
};

TEST(Integration, BudgetCapNeverExceeded)
{
    IntegrationRig rig(PolicyKind::PowerChief, 0.8, 3);
    bool violated = false;
    rig.center->setIntervalCallback([&](const ControlContext &ctx) {
        if (ctx.budget->allocated().value() >
            ctx.budget->cap().value() + 1e-6)
            violated = true;
    });
    rig.gen->start(SimTime::sec(300));
    rig.sim.runUntil(SimTime::sec(300));
    EXPECT_FALSE(violated);
    EXPECT_LE(rig.budget.allocated().value(), 13.56 + 1e-6);
}

TEST(Integration, AllocatedMatchesLiveInstanceLevels)
{
    // The budget ledger and the actual DVFS state must agree at every
    // control interval, across boosts, recycles and withdraws.
    IntegrationRig rig(PolicyKind::PowerChief, 0.9, 5);
    bool mismatch = false;
    rig.center->setIntervalCallback([&](const ControlContext &ctx) {
        double sum = 0.0;
        for (const auto *inst : ctx.app->allInstances()) {
            if (!inst->draining())
                sum += rig.model.activeWatts(inst->level()).value();
        }
        // Draining instances have been released from the ledger already;
        // live ones must match exactly.
        if (std::abs(sum - ctx.budget->allocated().value()) > 1e-6)
            mismatch = true;
    });
    rig.gen->start(SimTime::sec(300));
    rig.sim.runUntil(SimTime::sec(300));
    EXPECT_FALSE(mismatch);
}

TEST(Integration, QueryConservation)
{
    IntegrationRig rig(PolicyKind::PowerChief, 0.8, 7);
    rig.gen->start(SimTime::sec(200));
    rig.sim.runUntil(SimTime::sec(200));
    // Every submitted query is either completed or still in a queue.
    std::size_t queued = 0;
    for (const auto *inst : rig.app.allInstances())
        queued += inst->queueLength();
    EXPECT_EQ(rig.app.submitted(), rig.app.completed() + queued);
    EXPECT_EQ(rig.gen->generated(), rig.app.submitted());
}

TEST(Integration, CompletedQueriesHaveFullHopTrail)
{
    IntegrationRig rig(PolicyKind::PowerChief, 0.8, 9);
    bool allComplete = true;
    rig.app.setCompletionSink([&](const QueryPtr &q) {
        if (q->hops().size() != 3u)
            allComplete = false;
        for (const auto &hop : q->hops()) {
            if (hop.instanceId < 0 ||
                hop.finished < hop.started ||
                hop.started < hop.enqueued)
                allComplete = false;
        }
        // End-to-end spans at least the sum of hop latencies.
        SimTime hopSum;
        for (const auto &hop : q->hops())
            hopSum += (hop.finished - hop.enqueued);
        if (q->endToEnd() + SimTime::usec(1) < hopSum)
            allComplete = false;
    });
    rig.gen->start(SimTime::sec(200));
    rig.sim.runUntil(SimTime::sec(200));
    EXPECT_GT(rig.app.completed(), 50u);
    EXPECT_TRUE(allComplete);
}

TEST(Integration, RaplEnergyMatchesChipIntegral)
{
    IntegrationRig rig(PolicyKind::PowerChief, 0.8, 11);
    RaplReader rapl(&rig.chip);
    rig.gen->start(SimTime::sec(100));
    rig.sim.runUntil(SimTime::sec(100));
    EXPECT_NEAR(rapl.readEnergy().value(),
                rig.chip.totalEnergy().value(), 1.0);
}

TEST(Integration, MeasuredPowerStaysNearCap)
{
    // Modelled *active* power is capped; measured RAPL power (which
    // includes idle savings) must never exceed the budget either.
    IntegrationRig rig(PolicyKind::InstBoost, 1.0, 13);
    RaplReader rapl(&rig.chip);
    rig.gen->start(SimTime::sec(300));
    double worst = 0.0;
    for (int t = 10; t <= 300; t += 10) {
        rig.sim.runUntil(SimTime::sec(t));
        worst = std::max(worst, rapl.windowPower().value());
    }
    EXPECT_LE(worst, 13.56 + 1e-6);
}

TEST(Integration, PowerChiefBeatsBaselineUnderSaturation)
{
    const ExperimentRunner runner;
    Scenario base = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::High,
                                         PolicyKind::StageAgnostic);
    base.duration = SimTime::sec(400);
    Scenario chief = Scenario::mitigation(WorkloadModel::sirius(),
                                          LoadLevel::High,
                                          PolicyKind::PowerChief);
    chief.duration = SimTime::sec(400);
    const auto rb = runner.run(base);
    const auto rc = runner.run(chief);
    EXPECT_LT(rc.avgLatencySec, rb.avgLatencySec / 3.0);
    EXPECT_LT(rc.p99LatencySec, rb.p99LatencySec / 2.0);
}

TEST(Integration, InstanceBoostingBeatsFrequencyAtHighLoad)
{
    // The Fig. 4(b) ordering — the core adaptive-boosting premise.
    const ExperimentRunner runner;
    Scenario freq = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::High,
                                         PolicyKind::FreqBoost);
    freq.duration = SimTime::sec(400);
    Scenario inst = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::High,
                                         PolicyKind::InstBoost);
    inst.duration = SimTime::sec(400);
    EXPECT_LT(runner.run(inst).avgLatencySec,
              runner.run(freq).avgLatencySec);
}

TEST(Integration, FrequencyBoostingWinsAtLowLoad)
{
    // The Fig. 4(a) ordering.
    const ExperimentRunner runner;
    Scenario freq = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::Low,
                                         PolicyKind::FreqBoost);
    Scenario inst = Scenario::mitigation(WorkloadModel::sirius(),
                                         LoadLevel::Low,
                                         PolicyKind::InstBoost);
    EXPECT_LT(runner.run(freq).avgLatencySec,
              runner.run(inst).avgLatencySec);
}

TEST(Integration, ConservePolicySavesPowerMeetingQoS)
{
    const ExperimentRunner runner;
    auto make = [](PolicyKind kind) {
        Scenario sc = Scenario::conservation(
            WorkloadModel::webSearch(), {6, 1}, 0.25, SimTime::sec(2),
            kind, 3);
        sc.load = LoadProfile::constant(12.0);
        sc.duration = SimTime::sec(300);
        return sc;
    };
    const auto baseline = runner.run(make(PolicyKind::StageAgnostic));
    const auto conserve =
        runner.run(make(PolicyKind::PowerChiefConserve));
    EXPECT_LT(conserve.avgPowerWatts, 0.8 * baseline.avgPowerWatts);
    EXPECT_LT(conserve.avgLatencySec, 0.25);
}

TEST(Integration, WithdrawnInstancesReleaseCores)
{
    IntegrationRig rig(PolicyKind::PowerChief, 0.2, 17);
    rig.gen->start(SimTime::sec(400));
    rig.sim.runUntil(SimTime::sec(400));
    // Low load: no more cores may be held than instances alive.
    EXPECT_EQ(static_cast<std::size_t>(rig.chip.numAllocated()),
              rig.app.allInstances().size());
}

TEST(Integration, DistributedDeploymentWithBusDelay)
{
    // §8.5: stages may run distributed; the joint design tolerates
    // report delivery latency. A 2 ms RPC delay must not break control.
    IntegrationRig rig(PolicyKind::PowerChief, 0.8, 19);
    rig.bus.setDeliveryDelay(SimTime::msec(2));
    rig.gen->start(SimTime::sec(200));
    rig.sim.runUntil(SimTime::sec(210));
    EXPECT_GT(rig.center->queriesObserved(), 0u);
    EXPECT_EQ(rig.center->queriesObserved(), rig.app.completed());
}

} // namespace
} // namespace pc
