/** @file Unit tests for the stage dispatcher policies. */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "app/dispatcher.h"

namespace pc {
namespace {

/** Rig with N instances on one chip; work can be preloaded per queue. */
class DispatcherTest : public testing::Test
{
  protected:
    DispatcherTest() : model(PowerModel::haswell()), chip(&sim, &model, 8)
    {
    }

    ServiceInstance *
    addInstance(int level)
    {
        const int core = *chip.acquireCore(level);
        const std::int64_t id = nextId++;
        instances.push_back(std::make_unique<ServiceInstance>(
            id, "I_" + std::to_string(id), 0, &sim, &chip,
            core, [](QueryPtr) {}));
        raw.push_back(instances.back().get());
        return instances.back().get();
    }

    void
    preload(ServiceInstance *inst, int queries)
    {
        for (int i = 0; i < queries; ++i) {
            inst->enqueue(std::make_shared<Query>(
                1000 + i, SimTime::zero(),
                std::vector<WorkDemand>{{100.0, 0.0}}));
        }
    }

    Simulator sim;
    PowerModel model;
    CmpChip chip;
    std::vector<std::unique_ptr<ServiceInstance>> instances;
    std::vector<ServiceInstance *> raw;
    std::int64_t nextId = 1;
};

TEST_F(DispatcherTest, EmptyPoolReturnsNull)
{
    Dispatcher d(DispatchPolicy::RoundRobin);
    EXPECT_EQ(d.pick({}), nullptr);
}

TEST_F(DispatcherTest, RoundRobinCycles)
{
    addInstance(0);
    addInstance(0);
    addInstance(0);
    Dispatcher d(DispatchPolicy::RoundRobin);
    EXPECT_EQ(d.pick(raw), raw[0]);
    EXPECT_EQ(d.pick(raw), raw[1]);
    EXPECT_EQ(d.pick(raw), raw[2]);
    EXPECT_EQ(d.pick(raw), raw[0]);
}

TEST_F(DispatcherTest, JsqPicksShortestQueue)
{
    addInstance(0);
    addInstance(0);
    addInstance(0);
    preload(raw[0], 3);
    preload(raw[1], 1);
    preload(raw[2], 2);
    Dispatcher d(DispatchPolicy::JoinShortestQueue);
    EXPECT_EQ(d.pick(raw), raw[1]);
}

TEST_F(DispatcherTest, JsqTieBreaksFirst)
{
    addInstance(0);
    addInstance(0);
    Dispatcher d(DispatchPolicy::JoinShortestQueue);
    EXPECT_EQ(d.pick(raw), raw[0]);
}

TEST_F(DispatcherTest, WeightedPrefersFasterAtEqualQueue)
{
    addInstance(0);  // 1.2 GHz
    addInstance(12); // 2.4 GHz
    preload(raw[0], 1);
    preload(raw[1], 1);
    Dispatcher d(DispatchPolicy::WeightedFastest);
    EXPECT_EQ(d.pick(raw), raw[1]);
}

TEST_F(DispatcherTest, WeightedToleratesLongerQueueOnFastCore)
{
    addInstance(0);  // 1.2 GHz, 1 query -> score 2/1200
    addInstance(12); // 2.4 GHz, 2 queries -> score 3/2400
    preload(raw[0], 1);
    preload(raw[1], 2);
    Dispatcher d(DispatchPolicy::WeightedFastest);
    // 3/2400 = 1.25e-3 < 2/1200 = 1.67e-3.
    EXPECT_EQ(d.pick(raw), raw[1]);
}

TEST_F(DispatcherTest, DrainingInstancesExcluded)
{
    addInstance(0);
    addInstance(0);
    raw[0]->setDraining(true);
    Dispatcher d(DispatchPolicy::JoinShortestQueue);
    EXPECT_EQ(d.pick(raw), raw[1]);
}

TEST_F(DispatcherTest, AllDrainingReturnsNull)
{
    addInstance(0);
    raw[0]->setDraining(true);
    Dispatcher d(DispatchPolicy::RoundRobin);
    EXPECT_EQ(d.pick(raw), nullptr);
}

TEST_F(DispatcherTest, NullEntriesIgnored)
{
    addInstance(0);
    std::vector<ServiceInstance *> withNull = {nullptr, raw[0]};
    Dispatcher d(DispatchPolicy::RoundRobin);
    EXPECT_EQ(d.pick(withNull), raw[0]);
}

TEST_F(DispatcherTest, RoundRobinSkipsDrainingWithoutStalling)
{
    addInstance(0);
    addInstance(0);
    addInstance(0);
    raw[1]->setDraining(true);
    Dispatcher d(DispatchPolicy::RoundRobin);
    // Eligible = {0, 2}; successive picks alternate between them.
    EXPECT_EQ(d.pick(raw), raw[0]);
    EXPECT_EQ(d.pick(raw), raw[2]);
    EXPECT_EQ(d.pick(raw), raw[0]);
}

TEST_F(DispatcherTest, PolicyAccessor)
{
    Dispatcher d(DispatchPolicy::WeightedFastest);
    EXPECT_EQ(d.policy(), DispatchPolicy::WeightedFastest);
}

} // namespace
} // namespace pc
