/**
 * @file
 * Sweep-engine tests: bit-determinism across thread counts,
 * submission-order collection under adversarial run durations, result
 * cache hit/miss/invalidation, and the determinism audit catching an
 * injected nondeterministic run function.
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "exp/result_cache.h"
#include "exp/sweep.h"
#include "exp/thread_pool.h"

namespace pc {
namespace {

/** A real but tiny simulation: finishes in milliseconds. */
Scenario
quickScenario(int seed)
{
    Scenario sc =
        Scenario::mitigation(WorkloadModel::nlp(), LoadLevel::Medium,
                             PolicyKind::PowerChief, seed);
    sc.duration = SimTime::sec(60);
    sc.name = "quick/" + std::to_string(seed);
    return sc;
}

std::string
dumped(const RunResult &r)
{
    return runResultToJson(r).dump();
}

std::string
freshDir(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryTaskAndIsReusableAfterWait)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++count;
            });
    }
    EXPECT_EQ(count.load(), 20);
}

// ------------------------------------------------------- determinism

TEST(SweepRunner, ResultsIdenticalAcrossThreadCounts)
{
    std::vector<Scenario> scenarios;
    for (int seed = 1; seed <= 6; ++seed)
        scenarios.push_back(quickScenario(seed));

    std::vector<std::vector<std::string>> perJobs;
    for (int jobs : {1, 2, 8}) {
        SweepOptions opt;
        opt.jobs = jobs;
        SweepRunner sweep(opt);
        std::vector<std::string> dumps;
        for (const RunResult &r : sweep.runAll(scenarios))
            dumps.push_back(dumped(r));
        perJobs.push_back(std::move(dumps));
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        SCOPED_TRACE("scenario " + scenarios[i].name);
        EXPECT_EQ(perJobs[0][i], perJobs[1][i]) << "jobs=1 vs jobs=2";
        EXPECT_EQ(perJobs[0][i], perJobs[2][i]) << "jobs=1 vs jobs=8";
    }
}

TEST(SweepRunner, CollectsInSubmissionOrderUnderAdversarialDurations)
{
    // Earlier submissions take longest, so with 4 workers the
    // completion order is roughly the reverse of submission order.
    constexpr int kRuns = 12;
    SweepOptions opt;
    opt.jobs = 4;
    SweepRunner sweep(opt);
    sweep.setRunFunction([](const Scenario &sc) {
        const auto idx = static_cast<int>(sc.seed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds((kRuns - idx) * 3));
        RunResult r;
        r.scenario = sc.name;
        r.completed = static_cast<std::uint64_t>(idx);
        return r;
    });

    std::vector<Scenario> scenarios;
    for (int i = 0; i < kRuns; ++i) {
        Scenario sc;
        sc.name = "stub/" + std::to_string(i);
        sc.seed = static_cast<std::uint64_t>(i);
        scenarios.push_back(sc);
    }
    const std::vector<RunResult> results = sweep.runAll(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());
    for (int i = 0; i < kRuns; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)].completed,
                  static_cast<std::uint64_t>(i));
        EXPECT_EQ(results[static_cast<std::size_t>(i)].scenario,
                  scenarios[static_cast<std::size_t>(i)].name);
    }
}

// ------------------------------------------------------------- cache

TEST(SweepRunner, CacheHitsMissesAndInvalidation)
{
    SweepOptions opt;
    opt.jobs = 2;
    opt.useCache = true;
    opt.cacheDir = freshDir("sweep_cache_test");
    SweepRunner sweep(opt);

    const std::vector<Scenario> scenarios = {quickScenario(1),
                                             quickScenario(2)};
    const std::vector<RunResult> first = sweep.runAll(scenarios);
    EXPECT_EQ(sweep.report().cacheMisses, 2u);
    EXPECT_EQ(sweep.report().cacheHits, 0u);

    // Unchanged sweep points are served from disk, byte-identical.
    const std::vector<RunResult> second = sweep.runAll(scenarios);
    EXPECT_EQ(sweep.report().cacheHits, 2u);
    EXPECT_EQ(sweep.report().cacheMisses, 0u);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(dumped(first[i]), dumped(second[i]));

    // Any fingerprint-relevant change (same name!) invalidates.
    Scenario changed = quickScenario(1);
    changed.duration = SimTime::sec(61);
    sweep.runAll({changed});
    EXPECT_EQ(sweep.report().cacheHits, 0u);
    EXPECT_EQ(sweep.report().cacheMisses, 1u);

    // Factory-override scenarios never touch the cache.
    Scenario opaque = quickScenario(1);
    opaque.metricFactory = [] {
        return std::make_unique<PowerChiefMetric>();
    };
    sweep.runAll({opaque});
    EXPECT_EQ(sweep.report().uncacheable, 1u);
    EXPECT_EQ(sweep.report().cacheHits, 0u);
    sweep.runAll({opaque});
    EXPECT_EQ(sweep.report().uncacheable, 1u);
    EXPECT_EQ(sweep.report().cacheHits, 0u);
}

TEST(ResultCache, RoundTripsResultsExactly)
{
    SweepOptions opt;
    opt.jobs = 1;
    opt.recordTraces = true;
    SweepRunner sweep(opt);
    const RunResult run = sweep.runOne(quickScenario(3));

    ResultCache cache(freshDir("result_cache_roundtrip"));
    const std::string key = *scenarioCanonical(quickScenario(3));
    EXPECT_FALSE(cache.load(key).has_value());
    cache.store(key, run);
    const std::optional<RunResult> loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(dumped(run), dumped(*loaded));
    // A different key maps to a different file and misses.
    EXPECT_FALSE(cache.load(key + "x").has_value());
}

/**
 * Stale-hit regression: a cache hit used to zero the cluster-arbiter
 * rebalance counter because the audit serializer predated the field.
 * Every AuditSummary counter must survive the round trip.
 */
TEST(ResultCache, RoundTripPreservesClusterAuditCounter)
{
    SweepOptions opt;
    opt.jobs = 1;
    SweepRunner sweep(opt);
    RunResult run = sweep.runOne(quickScenario(4));
    run.audit.collected = true;
    run.audit.clusterRebalances = 240;

    ResultCache cache(freshDir("result_cache_cluster_audit"));
    const std::string key = *scenarioCanonical(quickScenario(4));
    cache.store(key, run);
    const std::optional<RunResult> loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->audit.collected);
    EXPECT_EQ(loaded->audit.clusterRebalances, 240u);
    EXPECT_EQ(dumped(run), dumped(*loaded));
}

TEST(ResultCache, CanonicalCoversSeedAndControlKnobs)
{
    const Scenario base = quickScenario(1);
    Scenario seed = base;
    seed.seed = base.seed + 1;
    Scenario knob = base;
    knob.control.adjustInterval = SimTime::sec(99);
    const std::string canonical = *scenarioCanonical(base);
    EXPECT_NE(canonical, *scenarioCanonical(seed));
    EXPECT_NE(canonical, *scenarioCanonical(knob));
    EXPECT_EQ(canonical, *scenarioCanonical(base));
}

/**
 * Stale-hit regression: every result-affecting runner knob must be
 * part of the cache key. For each knob, seed the cache with a base
 * run, flip only that knob, and demand a MISS — a hit would serve a
 * result computed under different settings.
 */
TEST(SweepRunner, FlippingAnyResultAffectingKnobMissesTheCache)
{
    const std::string dir = freshDir("sweep_cache_knobs");
    const Scenario sc = quickScenario(7);

    const auto runWith = [&sc, &dir](const SweepOptions &extra) {
        SweepOptions opt = extra;
        opt.jobs = 1;
        opt.useCache = true;
        opt.cacheDir = dir;
        SweepRunner sweep(opt);
        sweep.runAll({sc});
        return sweep.report();
    };

    EXPECT_EQ(runWith(SweepOptions{}).cacheMisses, 1u);
    EXPECT_EQ(runWith(SweepOptions{}).cacheHits, 1u); // warm baseline

    SweepOptions traces;
    traces.recordTraces = true;
    EXPECT_EQ(runWith(traces).cacheMisses, 1u)
        << "recordTraces must be in the cache key";

    SweepOptions sample;
    sample.recordTraces = true; // sampleInterval only matters w/ traces
    sample.sampleInterval = SimTime::sec(9);
    EXPECT_EQ(runWith(sample).cacheMisses, 1u)
        << "sampleInterval must be in the cache key";

    SweepOptions attr;
    attr.attribution = true;
    EXPECT_EQ(runWith(attr).cacheMisses, 1u)
        << "attribution must be in the cache key";

    SweepOptions audit;
    audit.collectAudit = true;
    EXPECT_EQ(runWith(audit).cacheMisses, 1u)
        << "collectAudit must be in the cache key";

    SweepOptions critpath;
    critpath.collectCritPath = true;
    EXPECT_EQ(runWith(critpath).cacheMisses, 1u)
        << "collectCritPath must be in the cache key";

    SweepOptions slo;
    slo.slo.enabled = true;
    EXPECT_EQ(runWith(slo).cacheMisses, 1u)
        << "SLO tracking must be in the cache key";

    SweepOptions sloTarget;
    sloTarget.slo.enabled = true;
    sloTarget.slo.targetSec = 0.25;
    EXPECT_EQ(runWith(sloTarget).cacheMisses, 1u)
        << "the SLO target must be in the cache key";

    SweepOptions sloWindow;
    sloWindow.slo.enabled = true;
    sloWindow.slo.fastWindowSec = 30.0;
    EXPECT_EQ(runWith(sloWindow).cacheMisses, 1u)
        << "the SLO burn windows must be in the cache key";

    // Execution-only knobs deliberately share the key: same results,
    // any worker count.
    SweepOptions shards;
    shards.shards = 4;
    EXPECT_EQ(runWith(shards).cacheHits, 1u)
        << "--shards is a pure execution knob and must share the key";
}

TEST(ResultCache, CanonicalCoversShardedTopologyKnobs)
{
    Scenario base = quickScenario(1);
    base.nodeGroups = 2;
    const std::string canonical = *scenarioCanonical(base);

    Scenario groups = base;
    groups.nodeGroups = 4;
    EXPECT_NE(*scenarioCanonical(groups), canonical);

    Scenario remote = base;
    remote.remoteFraction = 0.4;
    EXPECT_NE(*scenarioCanonical(remote), canonical);

    Scenario latency = base;
    latency.interNodeLatency = SimTime::msec(25);
    EXPECT_NE(*scenarioCanonical(latency), canonical);
}

// ------------------------------------------------------------- audit

TEST(SweepRunner, AuditPassesOnDeterministicRuns)
{
    SweepOptions opt;
    opt.jobs = 2;
    opt.audit = true;
    opt.auditFraction = 1.0;
    opt.auditFatal = false;
    SweepRunner sweep(opt);
    const std::vector<Scenario> scenarios = {quickScenario(1),
                                             quickScenario(2)};
    sweep.runAll(scenarios);
    EXPECT_EQ(sweep.report().audited, scenarios.size());
    EXPECT_TRUE(sweep.report().divergences.empty());
}

TEST(SweepRunner, AuditDetectsInjectedNondeterminism)
{
    SweepOptions opt;
    opt.jobs = 2;
    opt.audit = true;
    opt.auditFraction = 1.0;
    opt.auditFatal = false; // record instead of fatal() for the test
    SweepRunner sweep(opt);

    // Every invocation returns a different result: the serial audit
    // re-run can never match the parallel pass.
    auto counter = std::make_shared<std::atomic<int>>(0);
    sweep.setRunFunction([counter](const Scenario &sc) {
        RunResult r;
        r.scenario = sc.name;
        r.avgLatencySec = counter->fetch_add(1);
        return r;
    });

    std::vector<Scenario> scenarios(3);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        scenarios[i].name = "nondet/" + std::to_string(i);
    sweep.runAll(scenarios);
    EXPECT_EQ(sweep.report().audited, scenarios.size());
    ASSERT_FALSE(sweep.report().divergences.empty());
    const SweepDivergence &d = sweep.report().divergences.front();
    EXPECT_NE(d.parallelJson, d.serialJson);
    EXPECT_FALSE(d.scenario.empty());
}

} // namespace
} // namespace pc
